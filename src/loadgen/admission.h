#ifndef ECLDB_LOADGEN_ADMISSION_H_
#define ECLDB_LOADGEN_ADMISSION_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "loadgen/slo.h"
#include "telemetry/telemetry.h"

namespace ecldb::loadgen {

/// Classic token bucket in virtual time: refills continuously at
/// `rate_qps`, holds at most `burst` tokens, admits while a token is
/// available. rate_qps <= 0 disables the bucket (always admits).
class TokenBucket {
 public:
  TokenBucket(double rate_qps, double burst);

  bool TryTake(SimTime now);
  double tokens(SimTime now) const;

 private:
  double Refilled(SimTime now) const;

  double rate_qps_;
  double burst_;
  double tokens_;
  SimTime last_ = 0;
};

/// Per-class admission policy.
struct ClassAdmissionParams {
  /// Token-bucket rate cap (queries/s); 0 = uncapped. Experiment drivers
  /// usually express this relative to capacity and fill it in.
  double bucket_rate_qps = 0.0;
  /// Bucket depth in tokens; 0 = one second at the rate cap.
  double bucket_burst = 0.0;
  /// System pressure where probabilistic shedding starts / reaches 100 %.
  /// Pressure is in [0, 1], so an onset above 1 means "never shed" — the
  /// premium default.
  double shed_onset = 1.1;
  double shed_full = 1.3;
};

struct AdmissionParams {
  /// Indexed by SloClass: premium is never pressure-shed by default,
  /// standard sheds late, best-effort sheds first.
  std::array<ClassAdmissionParams, kNumSloClasses> classes = {
      ClassAdmissionParams{0.0, 0.0, 1.1, 1.3},
      ClassAdmissionParams{0.0, 0.0, 0.70, 0.95},
      ClassAdmissionParams{0.0, 0.0, 0.45, 0.75},
  };
  /// Horizon of the recent-shed-fraction window the ECL feedback reads.
  SimDuration shed_window = Seconds(3);
  /// Optional telemetry: admission/{admitted,shed} totals, per-class
  /// admission/<class>/{admitted,shed} counters, and the
  /// admission/shed_fraction gauge. Registered only by loadgen runs.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Admission control at the system entrance: a per-class token bucket
/// (hard rate cap) plus pressure-driven probabilistic shedding, degrading
/// best-effort before standard before premium. Refused queries never reach
/// the engine — the shed rate is demand the ECL no longer sees, which is
/// exactly how shedding turns into measured energy savings.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionParams& params);

  /// Pressure source consulted per decision (usually SystemEcl::pressure
  /// or the max over a cluster's node pressures). Unset = pressure 0.
  void SetPressureSource(std::function<double()> source) {
    pressure_source_ = std::move(source);
  }

  /// Decides one arrival of class `c` at virtual time `now`. The shed coin
  /// is drawn from `rng` (the tenant's stream) so decisions are
  /// deterministic per seed.
  bool Admit(SloClass c, SimTime now, Rng& rng);

  int64_t admitted(SloClass c) const {
    return admitted_[static_cast<size_t>(c)];
  }
  int64_t shed(SloClass c) const { return shed_[static_cast<size_t>(c)]; }
  int64_t total_admitted() const;
  int64_t total_shed() const;

  /// Fraction of arrivals shed over the recent window ending at `now` —
  /// the reduced-demand signal the system ECL folds into its pressure.
  double RecentShedFraction(SimTime now) const;
  /// Shed arrivals per second over the same window.
  double RecentShedQps(SimTime now) const;

  double last_pressure() const { return last_pressure_; }

  /// Clears run counters and the recent window (telemetry counters stay
  /// monotonic, as everywhere else).
  void ResetRunStats();

 private:
  struct WindowBucket {
    SimTime start = 0;
    int64_t admitted = 0;
    int64_t shed = 0;
  };

  void RecordDecision(SimTime now, bool admitted_decision);
  void PruneWindow(SimTime now) const;

  AdmissionParams params_;
  std::function<double()> pressure_source_;
  std::array<TokenBucket, kNumSloClasses> buckets_;
  std::array<int64_t, kNumSloClasses> admitted_ = {0, 0, 0};
  std::array<int64_t, kNumSloClasses> shed_ = {0, 0, 0};
  std::array<telemetry::Counter, kNumSloClasses> admitted_counters_;
  std::array<telemetry::Counter, kNumSloClasses> shed_counters_;
  double last_pressure_ = 0.0;
  /// 1-second buckets over the recent window (pruned lazily; mutable so
  /// the read-side accessors stay const).
  mutable std::deque<WindowBucket> window_;
};

}  // namespace ecldb::loadgen

#endif  // ECLDB_LOADGEN_ADMISSION_H_
