#include "loadgen/loadgen.h"

#include <utility>

#include "common/check.h"

namespace ecldb::loadgen {

namespace {

/// SplitMix64 step: decorrelates the per-tenant, per-stream seeds derived
/// from one user-facing seed.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SloParams SloWithTelemetry(SloParams p, telemetry::Telemetry* tel) {
  if (p.telemetry == nullptr) p.telemetry = tel;
  return p;
}

AdmissionParams AdmissionWithTelemetry(AdmissionParams p,
                                       telemetry::Telemetry* tel) {
  if (p.telemetry == nullptr) p.telemetry = tel;
  return p;
}

}  // namespace

LoadGen::Tenant::Tenant(TenantSpec s, uint64_t arrival_seed,
                        uint64_t query_seed, uint64_t coin_seed)
    : spec(std::move(s)),
      shape(MakeTrafficShape(spec.shapes)),
      arrivals(std::make_unique<ArrivalProcess>(spec.arrival, shape.get(),
                                                arrival_seed)),
      query_rng(query_seed),
      coin_rng(coin_seed) {}

LoadGen::LoadGen(sim::Simulator* simulator, workload::Workload* workload,
                 const LoadGenParams& params)
    : simulator_(simulator),
      workload_(workload),
      params_(params),
      slo_(SloWithTelemetry(params.slo, params.telemetry)),
      admission_(AdmissionWithTelemetry(params.admission, params.telemetry)) {
  ECLDB_CHECK(simulator != nullptr && workload != nullptr);
  ECLDB_CHECK_MSG(!params_.tenants.empty(), "LoadGen needs >= 1 tenant");
  ECLDB_CHECK(params_.duration > 0);
  tenants_.reserve(params_.tenants.size());
  for (size_t i = 0; i < params_.tenants.size(); ++i) {
    const TenantSpec& spec = params_.tenants[i];
    ECLDB_CHECK(spec.weight > 0.0);
    ECLDB_CHECK(spec.arrival.num_users > 0 && spec.arrival.per_user_qps > 0.0);
    tenants_.emplace_back(spec, MixSeed(params_.seed, 3 * i + 1),
                          MixSeed(params_.seed, 3 * i + 2),
                          MixSeed(params_.seed, 3 * i + 3));
  }
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("loadgen/arrivals", [this] { return arrivals_; });
    reg.AddCounterFn("loadgen/submitted", [this] { return submitted_; });
    reg.AddGauge("loadgen/offered_qps",
                 [this, tel] { return OfferedQps(tel->now()); });
  }
}

void LoadGen::NormalizeToCapacity(double capacity_qps, double total_load) {
  ECLDB_CHECK(capacity_qps > 0.0 && total_load > 0.0);
  double weight_sum = 0.0;
  for (const Tenant& t : tenants_) weight_sum += t.spec.weight;
  for (Tenant& t : tenants_) {
    const double nominal =
        static_cast<double>(t.spec.arrival.num_users) *
        t.spec.arrival.per_user_qps;
    const double target =
        total_load * capacity_qps * t.spec.weight / weight_sum;
    t.arrivals->set_rate_scale(target / nominal);
  }
}

void LoadGen::Start() {
  ECLDB_CHECK_MSG(static_cast<bool>(submit_), "SetSubmitFn before Start");
  ECLDB_CHECK_MSG(!started_, "LoadGen started twice");
  started_ = true;
  start_time_ = simulator_->now();
  for (size_t i = 0; i < tenants_.size(); ++i) ScheduleNext(i);
}

void LoadGen::ScheduleNext(size_t i) {
  const SimTime rel = simulator_->now() - start_time_;
  if (rel >= params_.duration) return;
  const ArrivalProcess::Event ev = tenants_[i].arrivals->Next(rel);
  simulator_->ScheduleAfter(ev.gap, [this, i, arrival = ev.is_arrival] {
    const SimTime t = simulator_->now() - start_time_;
    if (t < params_.duration && arrival) OnArrival(i);
    ScheduleNext(i);
  });
}

void LoadGen::OnArrival(size_t i) {
  Tenant& t = tenants_[i];
  const SimTime now = simulator_->now();
  ++arrivals_;
  ++t.offered;
  if (!admission_.Admit(t.spec.slo_class, now, t.coin_rng)) return;
  ++submitted_;
  ++t.admitted;
  engine::QuerySpec spec = workload_->MakeQuery(t.query_rng);
  spec.slo_class = static_cast<int8_t>(t.spec.slo_class);
  submit_(std::move(spec));
}

void LoadGen::OnQueryComplete(int8_t slo_class, SimTime arrival,
                              SimTime completion) {
  if (slo_class < 0 || slo_class >= kNumSloClasses) return;
  slo_.RecordCompletion(static_cast<SloClass>(slo_class), arrival,
                        completion);
}

double LoadGen::OfferedQps(SimTime now) const {
  const SimTime rel = now - start_time_;
  if (rel < 0 || rel >= params_.duration) return 0.0;
  double total = 0.0;
  for (const Tenant& t : tenants_) total += t.arrivals->RateAt(rel);
  return total;
}

void LoadGen::ResetRunStats() {
  slo_.ResetRunStats();
  admission_.ResetRunStats();
}

}  // namespace ecldb::loadgen
