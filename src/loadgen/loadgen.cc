#include "loadgen/loadgen.h"

#include <utility>

#include "common/check.h"

namespace ecldb::loadgen {

namespace {

/// SplitMix64 step: decorrelates the per-tenant, per-stream seeds derived
/// from one user-facing seed.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SloParams SloWithTelemetry(SloParams p, telemetry::Telemetry* tel) {
  if (p.telemetry == nullptr) p.telemetry = tel;
  return p;
}

AdmissionParams AdmissionWithTelemetry(AdmissionParams p,
                                       telemetry::Telemetry* tel) {
  if (p.telemetry == nullptr) p.telemetry = tel;
  return p;
}

}  // namespace

LoadGen::Tenant::Tenant(TenantSpec s, uint64_t arrival_seed,
                        uint64_t query_seed, uint64_t coin_seed,
                        uint64_t retry_seed)
    : spec(std::move(s)),
      shape(MakeTrafficShape(spec.shapes)),
      arrivals(std::make_unique<ArrivalProcess>(spec.arrival, shape.get(),
                                                arrival_seed)),
      query_rng(query_seed),
      coin_rng(coin_seed),
      retry_rng(retry_seed) {}

LoadGen::LoadGen(sim::Simulator* simulator, workload::Workload* workload,
                 const LoadGenParams& params)
    : simulator_(simulator),
      workload_(workload),
      params_(params),
      slo_(SloWithTelemetry(params.slo, params.telemetry)),
      admission_(AdmissionWithTelemetry(params.admission, params.telemetry)) {
  ECLDB_CHECK(simulator != nullptr && workload != nullptr);
  ECLDB_CHECK_MSG(!params_.tenants.empty(), "LoadGen needs >= 1 tenant");
  ECLDB_CHECK(params_.duration > 0);
  tenants_.reserve(params_.tenants.size());
  for (size_t i = 0; i < params_.tenants.size(); ++i) {
    const TenantSpec& spec = params_.tenants[i];
    ECLDB_CHECK(spec.weight > 0.0);
    ECLDB_CHECK(spec.arrival.num_users > 0 && spec.arrival.per_user_qps > 0.0);
    // The retry stream lives in a disjoint MixSeed index space (0x52455452
    // = "RETR"): the established 3i+k streams keep their exact seeds.
    tenants_.emplace_back(spec, MixSeed(params_.seed, 3 * i + 1),
                          MixSeed(params_.seed, 3 * i + 2),
                          MixSeed(params_.seed, 3 * i + 3),
                          MixSeed(params_.seed, 0x52455452ULL + i));
  }
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("loadgen/arrivals", [this] { return arrivals_; });
    reg.AddCounterFn("loadgen/submitted", [this] { return submitted_; });
    reg.AddGauge("loadgen/offered_qps",
                 [this, tel] { return OfferedQps(tel->now()); });
    // Retry metrics only exist in retry-enabled runs, keeping the metric
    // registry (and golden telemetry dumps) of every other run unchanged.
    if (params_.retry.enabled) {
      reg.AddCounterFn("loadgen/retries", [this] { return retries_; });
      reg.AddCounterFn("loadgen/abandoned", [this] { return abandoned_; });
      reg.AddCounterFn("loadgen/failed", [this] { return failed_; });
    }
  }
}

void LoadGen::NormalizeToCapacity(double capacity_qps, double total_load) {
  ECLDB_CHECK(capacity_qps > 0.0 && total_load > 0.0);
  double weight_sum = 0.0;
  for (const Tenant& t : tenants_) weight_sum += t.spec.weight;
  for (Tenant& t : tenants_) {
    const double nominal =
        static_cast<double>(t.spec.arrival.num_users) *
        t.spec.arrival.per_user_qps;
    const double target =
        total_load * capacity_qps * t.spec.weight / weight_sum;
    t.arrivals->set_rate_scale(target / nominal);
  }
}

void LoadGen::Start() {
  ECLDB_CHECK_MSG(static_cast<bool>(submit_), "SetSubmitFn before Start");
  ECLDB_CHECK_MSG(!started_, "LoadGen started twice");
  started_ = true;
  start_time_ = simulator_->now();
  for (size_t i = 0; i < tenants_.size(); ++i) ScheduleNext(i);
}

void LoadGen::ScheduleNext(size_t i) {
  const SimTime rel = simulator_->now() - start_time_;
  if (rel >= params_.duration) return;
  const ArrivalProcess::Event ev = tenants_[i].arrivals->Next(rel);
  simulator_->ScheduleAfter(ev.gap, [this, i, arrival = ev.is_arrival] {
    const SimTime t = simulator_->now() - start_time_;
    if (t < params_.duration && arrival) OnArrival(i);
    ScheduleNext(i);
  });
}

void LoadGen::OnArrival(size_t i) {
  ++arrivals_;
  ++tenants_[i].offered;
  AttemptAdmission(i, /*attempt=*/0);
}

void LoadGen::AttemptAdmission(size_t i, int8_t attempt) {
  Tenant& t = tenants_[i];
  const SimTime now = simulator_->now();
  if (!admission_.Admit(t.spec.slo_class, now, t.coin_rng)) {
    // Shed. The query content was never drawn (admission decides before
    // MakeQuery), so a later retry admitting draws the same stream state
    // a fresh admit would have. When refusal carries a cost, the entrance
    // still burns a scaled-down internal query on the engine.
    if (params_.reject_cost_frac > 0.0) {
      engine::QuerySpec stub = workload_->MakeQuery(t.query_rng);
      for (engine::PartitionWork& w : stub.work) {
        w.ops = std::max(1.0, w.ops * params_.reject_cost_frac);
      }
      stub.internal = true;
      submit_(std::move(stub));
    }
    MaybeRetry(i, attempt);
    return;
  }
  ++submitted_;
  ++t.admitted;
  engine::QuerySpec spec = workload_->MakeQuery(t.query_rng);
  spec.slo_class = static_cast<int8_t>(t.spec.slo_class);
  spec.tenant = static_cast<int16_t>(i);
  spec.attempt = attempt;
  submit_(std::move(spec));
}

void LoadGen::MaybeRetry(size_t i, int8_t attempt) {
  const RetryParams& r = params_.retry;
  if (!r.enabled) return;
  if (static_cast<int>(attempt) + 1 >= r.max_attempts) {
    ++abandoned_;
    return;
  }
  SimDuration delay;
  if (r.mode == RetryParams::Mode::kImmediate) {
    delay = r.immediate_delay;
  } else {
    double d_s = ToSeconds(r.base_backoff);
    for (int k = 0; k < static_cast<int>(attempt); ++k) d_s *= r.multiplier;
    d_s = std::min(d_s, ToSeconds(r.max_backoff));
    if (r.jitter > 0.0) {
      const double u = tenants_[i].retry_rng.NextDouble();
      d_s *= (1.0 - r.jitter) + 2.0 * r.jitter * u;
    }
    delay = FromSeconds(d_s);
  }
  // Horizon cap: a retry that would fire after the trace ends is
  // abandoned, so every arrival resolves within the run (conservation).
  if (simulator_->now() + delay - start_time_ >= params_.duration) {
    ++abandoned_;
    return;
  }
  ++retries_;
  simulator_->ScheduleAfter(
      delay, [this, i, next = static_cast<int8_t>(attempt + 1)] {
        AttemptAdmission(i, next);
      });
}

void LoadGen::OnQueryComplete(int8_t slo_class, SimTime arrival,
                              SimTime completion) {
  if (slo_class < 0 || slo_class >= kNumSloClasses) return;
  slo_.RecordCompletion(static_cast<SloClass>(slo_class), arrival,
                        completion);
}

void LoadGen::OnQueryFailed(int8_t slo_class, int16_t tenant, int8_t attempt,
                            SimTime arrival, engine::FailReason reason) {
  (void)slo_class;
  (void)arrival;
  (void)reason;
  ++failed_;
  if (tenant >= 0 && static_cast<size_t>(tenant) < tenants_.size()) {
    MaybeRetry(static_cast<size_t>(tenant), attempt);
  }
}

double LoadGen::OfferedQps(SimTime now) const {
  const SimTime rel = now - start_time_;
  if (rel < 0 || rel >= params_.duration) return 0.0;
  double total = 0.0;
  for (const Tenant& t : tenants_) total += t.arrivals->RateAt(rel);
  return total;
}

void LoadGen::ResetRunStats() {
  slo_.ResetRunStats();
  admission_.ResetRunStats();
}

}  // namespace ecldb::loadgen
