#include "loadgen/arrival.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::loadgen {

ArrivalProcess::ArrivalProcess(const ArrivalParams& params,
                               const TrafficShape* shape, uint64_t seed)
    : params_(params), shape_(shape), rng_(seed) {
  ECLDB_CHECK(shape != nullptr);
  ECLDB_CHECK(params.num_users > 0);
  ECLDB_CHECK(params.per_user_qps > 0.0);
  if (params_.kind == ArrivalKind::kMmpp) {
    ECLDB_CHECK(!params_.mmpp.state_multipliers.empty());
    ECLDB_CHECK(params_.mmpp.switch_rate_hz > 0.0);
  }
}

double ArrivalProcess::NominalRateAt(SimTime t) const {
  return static_cast<double>(params_.num_users) * params_.per_user_qps *
         rate_scale_ * shape_->MultiplierAt(t);
}

double ArrivalProcess::RateAt(SimTime t) const {
  double rate = NominalRateAt(t);
  if (params_.kind == ArrivalKind::kMmpp) {
    rate *= params_.mmpp.state_multipliers[static_cast<size_t>(state_)];
  }
  return rate;
}

ArrivalProcess::Event ArrivalProcess::Next(SimTime t) {
  const double rate = RateAt(t);
  // Dormant tenant (night trough, rate-scale 0): poll the shape again in
  // 50 ms rather than drawing an astronomically long gap that would jump
  // past the next shape edge.
  const double arrival_gap_s =
      rate > 1e-9 ? rng_.NextExponential(rate) : 0.050;

  Event e;
  if (params_.kind == ArrivalKind::kMmpp &&
      params_.mmpp.state_multipliers.size() > 1) {
    const double switch_gap_s =
        rng_.NextExponential(params_.mmpp.switch_rate_hz);
    if (switch_gap_s < arrival_gap_s) {
      // The modulating chain fires first: advance it (uniform over the
      // other states — a symmetric switch chain with uniform stationary
      // distribution) and report the internal event.
      const int others =
          static_cast<int>(params_.mmpp.state_multipliers.size()) - 1;
      int next = static_cast<int>(rng_.NextBounded(
          static_cast<uint64_t>(others)));
      if (next >= state_) ++next;
      state_ = next;
      e.gap = std::max<SimDuration>(Nanos(100), FromSeconds(switch_gap_s));
      e.is_arrival = false;
      return e;
    }
  }
  const double gap_s = rate > 1e-9 ? std::min(arrival_gap_s, 0.050) : 0.050;
  e.gap = std::max<SimDuration>(Nanos(100), FromSeconds(gap_s));
  // A capped gap with no rate is a shape re-check, not an arrival.
  e.is_arrival = rate > 1e-9 && arrival_gap_s <= 0.050;
  return e;
}

}  // namespace ecldb::loadgen
