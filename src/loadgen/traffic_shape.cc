#include "loadgen/traffic_shape.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace ecldb::loadgen {
namespace {

/// Constant multiplier (magnitude; default 1.0).
class SteadyShape : public TrafficShape {
 public:
  explicit SteadyShape(const ShapeSpec& spec)
      : level_(spec.magnitude > 0.0 ? spec.magnitude : 1.0) {}

  std::string_view name() const override { return "steady"; }
  double MultiplierAt(SimTime) const override { return level_; }

 private:
  double level_;
};

/// Day/night sinusoid with mean 1: peak at mid-cycle, trough at the cycle
/// boundaries. magnitude = peak/trough ratio (default 4), duration = cycle
/// period (default 180 s — one compressed day), start = phase offset.
class DiurnalShape : public TrafficShape {
 public:
  explicit DiurnalShape(const ShapeSpec& spec)
      : period_(spec.duration > 0 ? spec.duration : Seconds(180)),
        phase_(spec.start) {
    const double ratio = spec.magnitude > 0.0 ? spec.magnitude : 4.0;
    ECLDB_CHECK(ratio >= 1.0);
    // mean of 1 + a*(-cos) over a full cycle is 1; peak/trough =
    // (1+a)/(1-a) = ratio  =>  a = (ratio-1)/(ratio+1).
    amplitude_ = (ratio - 1.0) / (ratio + 1.0);
  }

  std::string_view name() const override { return "diurnal"; }
  double MultiplierAt(SimTime t) const override {
    const double frac =
        ToSeconds(t + phase_) / ToSeconds(period_);  // cycles elapsed
    return 1.0 - amplitude_ * std::cos(2.0 * 3.14159265358979323846 *
                                       (frac - std::floor(frac)));
  }

 private:
  SimDuration period_;
  SimTime phase_;
  double amplitude_;
};

/// Flash crowd: multiplier 1 outside the event window; inside it ramps
/// linearly to `magnitude` (default 10) over the first tenth of the
/// window, holds, and ramps back down over the last tenth — the shape of
/// a viral event, not a square wave that an admission controller could
/// trivially phase-lock to.
class FlashCrowdShape : public TrafficShape {
 public:
  explicit FlashCrowdShape(const ShapeSpec& spec)
      : start_(spec.start),
        duration_(spec.duration > 0 ? spec.duration : Seconds(30)),
        peak_(spec.magnitude > 0.0 ? spec.magnitude : 10.0) {}

  std::string_view name() const override { return "flash_crowd"; }
  double MultiplierAt(SimTime t) const override {
    if (t < start_ || t >= start_ + duration_) return 1.0;
    const double frac = ToSeconds(t - start_) / ToSeconds(duration_);
    const double edge = 0.1;  // ramp fraction on each side
    double level = 1.0;
    if (frac < edge) {
      level = frac / edge;
    } else if (frac > 1.0 - edge) {
      level = (1.0 - frac) / edge;
    }
    return 1.0 + (peak_ - 1.0) * level;
  }

 private:
  SimTime start_;
  SimDuration duration_;
  double peak_;
};

/// Regional failover: a step at `start` to `magnitude` (default 1.8) that
/// persists — the surviving region absorbs a failed peer's users until the
/// trace ends (duration > 0 bounds the outage and steps back down).
class RegionalFailoverShape : public TrafficShape {
 public:
  explicit RegionalFailoverShape(const ShapeSpec& spec)
      : start_(spec.start),
        end_(spec.duration > 0 ? spec.start + spec.duration : kSimTimeNever),
        level_(spec.magnitude > 0.0 ? spec.magnitude : 1.8) {}

  std::string_view name() const override { return "regional_failover"; }
  double MultiplierAt(SimTime t) const override {
    return t >= start_ && t < end_ ? level_ : 1.0;
  }

 private:
  SimTime start_;
  SimTime end_;
  double level_;
};

/// Product of a shape stack.
class CompositeShape : public TrafficShape {
 public:
  explicit CompositeShape(std::vector<std::unique_ptr<TrafficShape>> parts)
      : parts_(std::move(parts)) {}

  std::string_view name() const override { return "composite"; }
  double MultiplierAt(SimTime t) const override {
    double m = 1.0;
    for (const auto& p : parts_) m *= p->MultiplierAt(t);
    return m;
  }

 private:
  std::vector<std::unique_ptr<TrafficShape>> parts_;
};

struct ShapeEntry {
  std::string_view name;
  std::unique_ptr<TrafficShape> (*make)(const ShapeSpec&);
};

template <typename T>
std::unique_ptr<TrafficShape> Make(const ShapeSpec& spec) {
  return std::make_unique<T>(spec);
}

/// The closed shape registry, sorted by name. A static table instead of
/// runtime registration: every shape is known at build time, and lookups
/// must behave identically in every experiment arm.
constexpr ShapeEntry kShapes[] = {
    {"diurnal", &Make<DiurnalShape>},
    {"flash_crowd", &Make<FlashCrowdShape>},
    {"regional_failover", &Make<RegionalFailoverShape>},
    {"steady", &Make<SteadyShape>},
};

}  // namespace

std::unique_ptr<TrafficShape> MakeTrafficShape(const ShapeSpec& spec) {
  for (const ShapeEntry& e : kShapes) {
    if (e.name == spec.name) return e.make(spec);
  }
  ECLDB_CHECK_MSG(false, "unknown traffic shape name");
  return nullptr;
}

std::unique_ptr<TrafficShape> MakeTrafficShape(
    const std::vector<ShapeSpec>& stack) {
  std::vector<std::unique_ptr<TrafficShape>> parts;
  parts.reserve(stack.size());
  for (const ShapeSpec& spec : stack) parts.push_back(MakeTrafficShape(spec));
  if (parts.empty()) parts.push_back(MakeTrafficShape(ShapeSpec{}));
  if (parts.size() == 1) return std::move(parts.front());
  return std::make_unique<CompositeShape>(std::move(parts));
}

std::vector<std::string_view> RegisteredTrafficShapes() {
  std::vector<std::string_view> names;
  for (const ShapeEntry& e : kShapes) names.push_back(e.name);
  return names;
}

}  // namespace ecldb::loadgen
