#include "telemetry/trace.h"

#include <cstdio>

#include "common/check.h"

namespace ecldb::telemetry {

TraceRecorder::TraceRecorder(size_t capacity) : buffer_(capacity) {
  ECLDB_CHECK(capacity > 0);
}

int TraceRecorder::RegisterLane(const std::string& name) {
  lanes_.push_back(prefix_.empty() ? name : prefix_ + name);
  return static_cast<int>(lanes_.size() - 1);
}

void TraceRecorder::CounterSample(const std::string& name, SimTime ts,
                                  double value) {
  if (!enabled_) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kCounter;
  e.ts = ts;
  e.lane = 0;
  e.cat = "metric";
  e.name = name;
  e.args = "\"value\":" + JsonNumber(value);
  Push(std::move(e));
}

void TraceRecorder::Push(TraceEvent e) {
  if (size_ == buffer_.size()) ++dropped_;  // overwriting the oldest
  buffer_[head_] = std::move(e);
  head_ = (head_ + 1) % buffer_.size();
  if (size_ < buffer_.size()) ++size_;
}

std::vector<const TraceEvent*> TraceRecorder::InOrder() const {
  std::vector<const TraceEvent*> out;
  out.reserve(size_);
  const size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(&buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace ecldb::telemetry
