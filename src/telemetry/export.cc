#include "telemetry/export.h"

#include <cstdio>

#include "common/csv_writer.h"
#include "common/table_printer.h"

namespace ecldb::telemetry {

namespace {

// Microsecond timestamp with nanosecond fraction, rendered from the
// integer nanosecond stamp (no floating point → exact and deterministic).
std::string MicrosFromNanos(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

const char* PhaseCode(TraceEvent::Phase p) {
  switch (p) {
    case TraceEvent::Phase::kComplete:
      return "X";
    case TraceEvent::Phase::kInstant:
      return "i";
    case TraceEvent::Phase::kCounter:
      return "C";
  }
  return "i";
}

}  // namespace

std::string ChromeTraceJson(const Telemetry& telemetry) {
  const TraceRecorder& trace = telemetry.trace();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += event;
  };
  // Lane names as thread-name metadata so Perfetto shows labeled tracks.
  const std::vector<std::string>& lanes = trace.lanes();
  for (size_t i = 0; i < lanes.size(); ++i) {
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(i) + ",\"args\":{\"name\":\"" +
           JsonEscape(lanes[i]) + "\"}}");
  }
  for (const TraceEvent* e : trace.InOrder()) {
    std::string ev = "{\"name\":\"" + JsonEscape(e->name) + "\",\"cat\":\"" +
                     JsonEscape(e->cat) + "\",\"ph\":\"";
    ev += PhaseCode(e->phase);
    ev += "\",\"ts\":" + MicrosFromNanos(e->ts);
    if (e->phase == TraceEvent::Phase::kComplete) {
      ev += ",\"dur\":" + MicrosFromNanos(e->dur);
    }
    ev += ",\"pid\":1,\"tid\":" + std::to_string(e->lane);
    if (e->phase == TraceEvent::Phase::kInstant) ev += ",\"s\":\"t\"";
    if (!e->args.empty()) ev += ",\"args\":{" + e->args + "}";
    ev += '}';
    append(ev);
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const Telemetry& telemetry, const std::string& path) {
  const std::string json = ChromeTraceJson(telemetry);
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && !EnsureDirectory(path.substr(0, slash))) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

bool WriteSeriesCsv(const Telemetry& telemetry, const std::string& path,
                    const std::vector<std::string>& columns,
                    const std::vector<std::string>& rename) {
  if (!rename.empty() && rename.size() != columns.size()) return false;
  const std::vector<std::string> header = telemetry.SeriesHeader();
  std::vector<size_t> select;
  std::vector<std::string> out_header;
  if (columns.empty()) {
    for (size_t i = 0; i < header.size(); ++i) select.push_back(i);
    out_header = header;
  } else {
    for (const std::string& want : columns) {
      size_t idx = header.size();
      for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == want) {
          idx = i;
          break;
        }
      }
      if (idx == header.size()) return false;
      select.push_back(idx);
      out_header.push_back(rename.empty() ? want
                                          : rename[select.size() - 1]);
    }
  }
  CsvWriter csv(path, out_header);
  if (!csv.ok()) return false;
  std::vector<double> row(select.size());
  for (const std::vector<double>& sample : telemetry.series()) {
    for (size_t i = 0; i < select.size(); ++i) row[i] = sample[select[i]];
    csv.AddNumericRow(row);
  }
  return true;
}

std::string SummaryString(const Telemetry& telemetry) {
  const MetricRegistry& reg = telemetry.registry();
  std::string out;

  if (reg.num_counters() > 0 || reg.num_gauges() > 0) {
    TablePrinter t({"metric", "kind", "value"});
    for (int i = 0; i < reg.num_counters(); ++i) {
      t.AddRow({reg.counter_name(i), "counter", FmtInt(reg.CounterValue(i))});
    }
    for (int i = 0; i < reg.num_gauges(); ++i) {
      t.AddRow({reg.gauge_name(i), "gauge", Fmt(reg.GaugeValue(i), 4)});
    }
    out += t.ToString();
  }

  if (reg.num_histograms() > 0) {
    TablePrinter t({"histogram", "count", "mean", "p50<=", "p99<=", "max"});
    for (int i = 0; i < reg.num_histograms(); ++i) {
      const Histogram* h = reg.histogram(i);
      t.AddRow({h->name(), FmtInt(h->count()), Fmt(h->Mean(), 4),
                Fmt(h->PercentileBound(50.0), 4),
                Fmt(h->PercentileBound(99.0), 4), Fmt(h->max(), 4)});
    }
    if (!out.empty()) out += '\n';
    out += t.ToString();
  }

  const TraceRecorder& trace = telemetry.trace();
  if (trace.enabled()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "trace: %lld events recorded, %lld dropped\n",
                  static_cast<long long>(trace.size()),
                  static_cast<long long>(trace.dropped()));
    if (!out.empty()) out += '\n';
    out += buf;
  }
  return out;
}

void PrintSummary(const Telemetry& telemetry) {
  std::fputs(SummaryString(telemetry).c_str(), stdout);
}

}  // namespace ecldb::telemetry
