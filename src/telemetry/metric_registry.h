#ifndef ECLDB_TELEMETRY_METRIC_REGISTRY_H_
#define ECLDB_TELEMETRY_METRIC_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ecldb::telemetry {

/// Handle to a monotonically-increasing integer counter.
///
/// The handle is always valid: default-constructed (or constructed from a
/// null cell) it counts into its own inline storage, so instrumented
/// components work unchanged when no registry is attached — the increment
/// compiles to a single add either way, which is what makes the disabled
/// path effectively free (the overhead microbench pins this).
class Counter {
 public:
  Counter() : cell_(&local_) {}
  explicit Counter(int64_t* cell) : cell_(cell != nullptr ? cell : &local_) {}

  Counter(const Counter& other)
      : local_(other.value()),
        cell_(other.is_local() ? &local_ : other.cell_) {}
  Counter& operator=(const Counter& other) {
    if (this == &other) return *this;
    if (other.is_local()) {
      local_ = other.value();
      cell_ = &local_;
    } else {
      cell_ = other.cell_;
    }
    return *this;
  }

  void Increment() { ++*cell_; }
  void Add(int64_t delta) { *cell_ += delta; }
  int64_t value() const { return *cell_; }

 private:
  bool is_local() const { return cell_ == &local_; }

  int64_t local_ = 0;
  int64_t* cell_;
};

/// Fixed log-spaced bucket layout of a histogram. Boundaries are computed
/// once by repeated multiplication (`bound[i+1] = bound[i] * growth`), so
/// they are byte-identical for a given spec on every run and across
/// `RunMatrix --jobs` values — the property the determinism tests pin.
struct HistogramSpec {
  /// Upper bound of the first bucket.
  double first_bound = 1e-3;
  /// Multiplicative bucket growth (> 1).
  double growth = 2.0;
  /// Number of bounded buckets; one overflow bucket is appended.
  int num_buckets = 32;
};

/// Log-bucketed histogram with deterministic, fixed bucket boundaries.
/// Bucket i counts values v with bound[i-1] < v <= bound[i] (bucket 0
/// counts v <= bound[0]); values above the last bound go to the overflow
/// bucket. Sum/min/max accumulate in record order.
class Histogram {
 public:
  Histogram(std::string name, const HistogramSpec& spec);

  const std::string& name() const { return name_; }

  void Record(double value);

  int BucketOf(double value) const;
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<int64_t>& buckets() const { return counts_; }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double Mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Upper bound of the bucket containing the p-th percentile (p in
  /// [0, 100]); max() for the overflow bucket. Deterministic.
  double PercentileBound(double p) const;

 private:
  std::string name_;
  std::vector<double> bounds_;   // size num_buckets
  std::vector<int64_t> counts_;  // size num_buckets + 1 (overflow last)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Null-safe histogram handle for instrumentation sites: recording through
/// an unbound handle is an inlined no-op.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* h) : h_(h) {}
  void Record(double value) {
    if (h_ != nullptr) h_->Record(value);
  }
  const Histogram* get() const { return h_; }

 private:
  Histogram* h_ = nullptr;
};

/// Registry of named metrics: counters (owned cells or read-through
/// functions over existing component counters), pull-mode gauges, and
/// log-bucketed histograms. Everything is sim-time/state derived, so a
/// dump is a pure function of the run. Dump order is sorted by name,
/// independent of registration order.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registration-time path prefix, prepended to every metric name
  /// registered while set (e.g. "node0/" turns "msg/socket1/..." into
  /// "node0/msg/socket1/..."). Cluster runs scope each node's component
  /// metrics this way; the default empty prefix keeps every single-node
  /// metric name — and thus every golden dump — byte-identical.
  void SetPathPrefix(std::string prefix) { prefix_ = std::move(prefix); }
  const std::string& path_prefix() const { return prefix_; }

  /// Creates a registry-owned counter cell. `name` must be unique.
  Counter AddCounter(const std::string& name);

  /// Registers a counter that reads through to an existing component
  /// counter (migration path for counters whose storage must stay where
  /// it is, e.g. atomics shared with worker threads).
  void AddCounterFn(const std::string& name, std::function<int64_t()> fn);

  /// Registers a pull-mode gauge. The function is evaluated at sampling
  /// and export time only; it may carry mutable state (e.g. an energy
  /// delta over the sample period).
  void AddGauge(const std::string& name, std::function<double()> fn);

  Histogram* AddHistogram(const std::string& name, const HistogramSpec& spec);

  /// Number of registered metrics of each kind.
  int num_counters() const { return static_cast<int>(counters_.size()); }
  int num_gauges() const { return static_cast<int>(gauges_.size()); }
  int num_histograms() const { return static_cast<int>(histograms_.size()); }

  /// Gauge access in registration order (the sampler's column order).
  const std::string& gauge_name(int i) const { return gauges_[static_cast<size_t>(i)].name; }
  double GaugeValue(int i) const { return gauges_[static_cast<size_t>(i)].fn(); }
  /// Index of a gauge by name, -1 when absent.
  int GaugeIndex(const std::string& name) const;

  int64_t CounterValue(int i) const;
  const std::string& counter_name(int i) const { return counters_[static_cast<size_t>(i)].name; }
  /// Value of a named counter; 0 when absent (`found` reports presence).
  int64_t CounterValueByName(const std::string& name, bool* found = nullptr) const;

  const Histogram* histogram(int i) const { return histograms_[static_cast<size_t>(i)].get(); }
  const Histogram* HistogramByName(const std::string& name) const;

  /// Deterministic text dump of every metric, sorted by name: the golden
  /// artifact of the determinism tests.
  std::string Dump() const;

 private:
  struct CounterEntry {
    std::string name;
    int64_t* cell = nullptr;            // owned cell, or
    std::function<int64_t()> fn;        // read-through
  };
  struct GaugeEntry {
    std::string name;
    std::function<double()> fn;
  };

  void CheckNameFree(const std::string& name) const;
  /// Applies the current path prefix to a registration name.
  std::string Qualified(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + name;
  }

  std::string prefix_;
  std::deque<int64_t> cells_;  // stable addresses for owned counter cells
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ecldb::telemetry

#endif  // ECLDB_TELEMETRY_METRIC_REGISTRY_H_
