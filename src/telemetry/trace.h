#ifndef ECLDB_TELEMETRY_TRACE_H_
#define ECLDB_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecldb::telemetry {

/// One recorded trace event. Timestamps are virtual simulation time in
/// nanoseconds — never wall clock — so a trace is a pure function of the
/// run and byte-identical across repeats and `--jobs` values.
struct TraceEvent {
  enum class Phase : uint8_t {
    kComplete,  // span with begin time and duration ("X")
    kInstant,   // point event ("i")
    kCounter,   // counter sample ("C")
  };

  Phase phase = Phase::kInstant;
  SimTime ts = 0;       // begin time (ns)
  SimDuration dur = 0;  // span duration (ns), kComplete only
  int lane = 0;         // rendered as the trace "tid" (one lane per component)
  std::string cat;      // low-cardinality category ("ecl", "hwsim", ...)
  std::string name;
  /// Pre-rendered JSON object *body* (without braces), e.g. `"config":3`;
  /// empty for none. For kCounter events this is the value ("value":x).
  std::string args;
};

/// Bounded ring buffer of trace events: begin/end spans, instant events,
/// and counter samples. When full, the oldest events are overwritten and
/// counted in `dropped()` — long runs keep the most recent window, which
/// is what one debugs. Recording through a disabled recorder is an
/// inlined flag test, nothing else.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Registers a named lane (rendered as a thread track in Perfetto).
  /// Returns the lane id to pass to the record calls.
  int RegisterLane(const std::string& name);
  const std::vector<std::string>& lanes() const { return lanes_; }

  /// Registration-time lane-name prefix (the trace analogue of
  /// MetricRegistry::SetPathPrefix): while set, registered lanes are
  /// named `<prefix><name>`. Empty by default, keeping single-node lane
  /// names byte-identical.
  void SetPathPrefix(std::string prefix) { prefix_ = std::move(prefix); }
  const std::string& path_prefix() const { return prefix_; }

  void Instant(int lane, const char* cat, const char* name, SimTime ts,
               std::string args = std::string()) {
    if (!enabled_) return;
    Push(TraceEvent{TraceEvent::Phase::kInstant, ts, 0, lane, cat, name,
                    std::move(args)});
  }

  /// Records a completed span [t0, t1].
  void Span(int lane, const char* cat, const char* name, SimTime t0, SimTime t1,
            std::string args = std::string()) {
    if (!enabled_) return;
    Push(TraceEvent{TraceEvent::Phase::kComplete, t0, t1 - t0, lane, cat, name,
                    std::move(args)});
  }

  /// Records one sample of a named counter track.
  void CounterSample(const std::string& name, SimTime ts, double value);

  size_t size() const { return size_; }
  size_t capacity() const { return buffer_.size(); }
  int64_t dropped() const { return dropped_; }

  /// Events in record order (oldest first).
  std::vector<const TraceEvent*> InOrder() const;

 private:
  void Push(TraceEvent e);

  bool enabled_ = false;
  std::string prefix_;
  std::vector<TraceEvent> buffer_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  int64_t dropped_ = 0;
  std::vector<std::string> lanes_;
};

/// Renders a double for a JSON args body with deterministic formatting.
std::string JsonNumber(double v);

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace ecldb::telemetry

#endif  // ECLDB_TELEMETRY_TRACE_H_
