#ifndef ECLDB_TELEMETRY_EXPORT_H_
#define ECLDB_TELEMETRY_EXPORT_H_

#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace ecldb::telemetry {

/// Renders the recorded trace as Chrome trace-event JSON (the format
/// chrome://tracing and ui.perfetto.dev load). Spans render as complete
/// ("X") events, instants as "i", gauge samples as counter tracks ("C");
/// lanes become named thread tracks via "M" metadata records. Timestamps
/// are virtual-time microseconds with nanosecond fraction — formatted
/// from the integer nanosecond stamps, so output is deterministic.
std::string ChromeTraceJson(const Telemetry& telemetry);

/// Writes ChromeTraceJson to `path` (parent directories are created).
/// Returns false if the file could not be written.
bool WriteChromeTrace(const Telemetry& telemetry, const std::string& path);

/// Writes the sampled gauge series as CSV. `columns` selects and orders
/// the columns by series-header name ("t_s" and gauge names); an empty
/// list exports every column in sampling order. Numeric formatting is
/// CsvWriter::AddNumericRow (%.10g) — byte-compatible with the bespoke
/// per-figure exporters this replaces. `rename`, when non-empty, gives
/// the output header names (parallel to `columns`) so a generic gauge
/// like "exp/offered_qps" can export under the legacy plot-script name
/// "offered_qps". Returns false on unknown column names, a rename-size
/// mismatch, or file errors.
bool WriteSeriesCsv(const Telemetry& telemetry, const std::string& path,
                    const std::vector<std::string>& columns = {},
                    const std::vector<std::string>& rename = {});

/// Human-readable summary of every registered metric: counters and
/// final gauge values as a table, histograms with count/mean/p50/p99/max.
std::string SummaryString(const Telemetry& telemetry);

/// Prints SummaryString to stdout.
void PrintSummary(const Telemetry& telemetry);

}  // namespace ecldb::telemetry

#endif  // ECLDB_TELEMETRY_EXPORT_H_
