#include "telemetry/metric_registry.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace ecldb::telemetry {

Histogram::Histogram(std::string name, const HistogramSpec& spec)
    : name_(std::move(name)) {
  ECLDB_CHECK(spec.first_bound > 0.0);
  ECLDB_CHECK(spec.growth > 1.0);
  ECLDB_CHECK(spec.num_buckets >= 1);
  bounds_.reserve(static_cast<size_t>(spec.num_buckets));
  double b = spec.first_bound;
  for (int i = 0; i < spec.num_buckets; ++i) {
    bounds_.push_back(b);
    b *= spec.growth;
  }
  counts_.assign(static_cast<size_t>(spec.num_buckets) + 1, 0);
}

int Histogram::BucketOf(double value) const {
  // First bucket whose upper bound is >= value; overflow past the last.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<int>(it - bounds_.begin());
}

void Histogram::Record(double value) {
  ++counts_[static_cast<size_t>(BucketOf(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::PercentileBound(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target && counts_[i] > 0) {
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

void MetricRegistry::CheckNameFree(const std::string& name) const {
  for (const CounterEntry& c : counters_) ECLDB_CHECK(c.name != name);
  for (const GaugeEntry& g : gauges_) ECLDB_CHECK(g.name != name);
  for (const auto& h : histograms_) ECLDB_CHECK(h->name() != name);
}

Counter MetricRegistry::AddCounter(const std::string& name) {
  const std::string qualified = Qualified(name);
  CheckNameFree(qualified);
  cells_.push_back(0);
  counters_.push_back(CounterEntry{qualified, &cells_.back(), nullptr});
  return Counter(&cells_.back());
}

void MetricRegistry::AddCounterFn(const std::string& name,
                                  std::function<int64_t()> fn) {
  const std::string qualified = Qualified(name);
  CheckNameFree(qualified);
  ECLDB_CHECK(fn != nullptr);
  counters_.push_back(CounterEntry{qualified, nullptr, std::move(fn)});
}

void MetricRegistry::AddGauge(const std::string& name,
                              std::function<double()> fn) {
  const std::string qualified = Qualified(name);
  CheckNameFree(qualified);
  ECLDB_CHECK(fn != nullptr);
  gauges_.push_back(GaugeEntry{qualified, std::move(fn)});
}

Histogram* MetricRegistry::AddHistogram(const std::string& name,
                                        const HistogramSpec& spec) {
  const std::string qualified = Qualified(name);
  CheckNameFree(qualified);
  histograms_.push_back(std::make_unique<Histogram>(qualified, spec));
  return histograms_.back().get();
}

int MetricRegistry::GaugeIndex(const std::string& name) const {
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t MetricRegistry::CounterValue(int i) const {
  const CounterEntry& c = counters_[static_cast<size_t>(i)];
  return c.cell != nullptr ? *c.cell : c.fn();
}

int64_t MetricRegistry::CounterValueByName(const std::string& name,
                                           bool* found) const {
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) {
      if (found != nullptr) *found = true;
      return CounterValue(static_cast<int>(i));
    }
  }
  if (found != nullptr) *found = false;
  return 0;
}

const Histogram* MetricRegistry::HistogramByName(const std::string& name) const {
  for (const auto& h : histograms_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

std::string MetricRegistry::Dump() const {
  // One line per metric, sorted by name so the dump is independent of
  // registration order (which may differ between wiring variants).
  std::vector<std::string> lines;
  char buf[256];
  for (size_t i = 0; i < counters_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "counter %s %lld", counters_[i].name.c_str(),
                  static_cast<long long>(CounterValue(static_cast<int>(i))));
    lines.emplace_back(buf);
  }
  for (const GaugeEntry& g : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge %s %.10g", g.name.c_str(), g.fn());
    lines.emplace_back(buf);
  }
  for (const auto& h : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %s count=%lld sum=%.10g min=%.10g max=%.10g",
                  h->name().c_str(), static_cast<long long>(h->count()),
                  h->sum(), h->min(), h->max());
    std::string line(buf);
    line += " buckets=";
    const std::vector<int64_t>& counts = h->buckets();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;  // sparse: only occupied buckets
      const double bound =
          i < h->bounds().size() ? h->bounds()[i] : h->max();
      std::snprintf(buf, sizeof(buf), "%s%.10g:%lld", line.back() == '=' ? "" : ",",
                    bound, static_cast<long long>(counts[i]));
      line += buf;
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace ecldb::telemetry
