#include "telemetry/telemetry.h"

#include "common/check.h"

namespace ecldb::telemetry {

Telemetry::Telemetry(const TelemetryParams& params)
    : params_(params), trace_(params.trace_capacity) {
  trace_.set_enabled(params_.enabled);
}

void Telemetry::StartSampler(SimTime origin) {
  if (!params_.enabled) return;
  ECLDB_CHECK(simulator_ != nullptr);
  sampling_ = true;
  origin_ = origin;
  series_gauges_ = registry_.num_gauges();
  next_sample_ = origin + params_.sample_period;
  ScheduleNext();
}

void Telemetry::ScheduleNext() {
  simulator_->Schedule(next_sample_, [this] {
    if (!sampling_) return;
    SampleNow();
    next_sample_ += params_.sample_period;
    ScheduleNext();
  });
}

void Telemetry::SampleNow() {
  const SimTime ts = now();
  std::vector<double> row;
  row.reserve(static_cast<size_t>(series_gauges_) + 1);
  row.push_back(ToSeconds(ts - origin_));
  for (int i = 0; i < series_gauges_; ++i) {
    const double v = registry_.GaugeValue(i);
    row.push_back(v);
    if (params_.trace_gauges) {
      trace_.CounterSample(registry_.gauge_name(i), ts, v);
    }
  }
  series_.push_back(std::move(row));
}

std::vector<std::string> Telemetry::SeriesHeader() const {
  std::vector<std::string> header;
  header.reserve(static_cast<size_t>(series_gauges_) + 1);
  header.emplace_back("t_s");
  const int n = sampling_ || !series_.empty() ? series_gauges_
                                              : registry_.num_gauges();
  for (int i = 0; i < n; ++i) header.push_back(registry_.gauge_name(i));
  return header;
}

Counter MakeCounter(Telemetry* t, const std::string& name) {
  return t != nullptr ? t->registry().AddCounter(name) : Counter();
}

HistogramHandle MakeHistogram(Telemetry* t, const std::string& name,
                              const HistogramSpec& spec) {
  return t != nullptr ? HistogramHandle(t->registry().AddHistogram(name, spec))
                      : HistogramHandle();
}

}  // namespace ecldb::telemetry
