#ifndef ECLDB_TELEMETRY_TELEMETRY_H_
#define ECLDB_TELEMETRY_TELEMETRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace.h"

namespace ecldb::telemetry {

struct TelemetryParams {
  /// Master switch for the *active* parts: the periodic gauge sampler and
  /// trace recording. Counters and histograms always count (they replace
  /// component-private counters and cost one add per event); with
  /// `enabled == false` no events are scheduled and every trace call is
  /// an inlined flag test, so a disabled run is byte-identical to an
  /// un-instrumented one and within noise of its wall-clock (pinned by
  /// bench/telemetry_overhead).
  bool enabled = false;
  /// Spacing of the gauge time series (and of the Chrome counter tracks).
  SimDuration sample_period = Millis(500);
  /// Also record each gauge sample as a Chrome counter-track event.
  bool trace_gauges = true;
  /// Trace ring capacity (events); oldest events are dropped when full.
  size_t trace_capacity = 1 << 16;
};

/// The shared telemetry context of one simulation: a metric registry, a
/// trace recorder, and a sim-time gauge sampler. One instance is shared
/// by all layers (hwsim, msg, engine, ecl) of one run; components receive
/// it via their params structs (nullptr = not instrumented).
///
/// Everything is derived from virtual time and simulation state — no wall
/// clock enters any exported artifact — so dumps, series, and traces are
/// deterministic: byte-identical across repeated runs and across
/// `RunMatrix --jobs` values.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryParams& params);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Binds the simulator whose virtual clock stamps all events. Must be
  /// called before StartSampler/now(); components read timestamps through
  /// their own simulator pointers, so binding late is fine for them.
  void Bind(sim::Simulator* simulator) { simulator_ = simulator; }
  sim::Simulator* simulator() const { return simulator_; }

  bool enabled() const { return params_.enabled; }
  const TelemetryParams& params() const { return params_; }

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Scopes subsequent metric and trace-lane registrations under a path
  /// prefix ("node0/..."). Cluster runs bracket each node's component
  /// construction with this; the default empty prefix leaves every legacy
  /// single-node name untouched.
  void SetPathPrefix(const std::string& prefix) {
    registry_.SetPathPrefix(prefix);
    trace_.SetPathPrefix(prefix);
  }

  SimTime now() const { return simulator_ != nullptr ? simulator_->now() : 0; }

  /// Starts periodic sampling of every registered gauge, with the first
  /// sample one period after `origin` and `t_s = ToSeconds(ts - origin)`
  /// in the series. No-op when disabled. Gauges registered after the
  /// start are not part of the series (fixed column set).
  void StartSampler(SimTime origin);
  void StopSampler() { sampling_ = false; }

  /// Takes one sample row immediately (also used by the periodic events).
  void SampleNow();

  /// Series column names: "t_s" followed by the sampled gauge names.
  std::vector<std::string> SeriesHeader() const;
  /// Sampled rows; row[0] is t_s relative to the sampler origin.
  const std::vector<std::vector<double>>& series() const { return series_; }

 private:
  void ScheduleNext();

  TelemetryParams params_;
  sim::Simulator* simulator_ = nullptr;
  MetricRegistry registry_;
  TraceRecorder trace_;
  bool sampling_ = false;
  SimTime origin_ = 0;
  SimTime next_sample_ = 0;
  int series_gauges_ = 0;  // column count frozen at StartSampler
  std::vector<std::vector<double>> series_;
};

/// Returns a registry-backed counter when `t` is non-null, otherwise a
/// locally-backed handle (component works unchanged without telemetry).
Counter MakeCounter(Telemetry* t, const std::string& name);

/// Returns a registry-backed histogram handle, or an unbound no-op handle.
HistogramHandle MakeHistogram(Telemetry* t, const std::string& name,
                              const HistogramSpec& spec);

}  // namespace ecldb::telemetry

#endif  // ECLDB_TELEMETRY_TELEMETRY_H_
