#ifndef ECLDB_ECL_META_CALIBRATION_H_
#define ECLDB_ECL_META_CALIBRATION_H_

#include <vector>

#include "common/types.h"
#include "hwsim/cluster.h"
#include "hwsim/machine.h"
#include "hwsim/work_profile.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct MetaCalibrationParams {
  /// Generous reference durations.
  SimDuration reference_apply = Millis(300);
  SimDuration reference_measure = Millis(300);
  /// Candidate durations tried, descending.
  std::vector<SimDuration> candidates = {Millis(300), Millis(200), Millis(100),
                                         Millis(50),  Millis(20),  Millis(10),
                                         Millis(5),   Millis(2),   Millis(1)};
  /// Acceptable relative deviation from the reference measurement.
  double tolerance = 0.03;
  /// Probes averaged per candidate.
  int probes = 4;
};

/// Result of one calibration sweep step.
struct CalibrationPoint {
  SimDuration duration = 0;
  double deviation = 0.0;  // relative to the reference measurement
};

struct MetaCalibrationResult {
  SimDuration measure_time = 0;
  SimDuration apply_time = 0;
  std::vector<CalibrationPoint> measure_sweep;
  std::vector<CalibrationPoint> apply_sweep;
};

/// The ECL's startup meta-calibration (paper Section 5.1, Fig. 12):
/// determines how quickly configurations can be applied and how short the
/// counter measurement window may be. It takes a reference measurement
/// with generous times, then shortens the times step by step while
/// tracking the deviation — switching between the highest configuration
/// (all cores, maximum frequency) and the lowest (one core, minimum
/// frequency) for every probe, first calibrating the measure time, then
/// the apply time.
class MetaCalibration {
 public:
  MetaCalibration(sim::Simulator* simulator, hwsim::Machine* machine,
                  SocketId socket);

  /// Runs the calibration under the given synthetic workload; consumes
  /// virtual time on the simulator.
  MetaCalibrationResult Run(const hwsim::WorkProfile& work,
                            const MetaCalibrationParams& params);

 private:
  /// One probe: apply `cfg`, wait `apply`, measure power over `measure`.
  double ProbePowerW(const hwsim::SocketConfig& cfg,
                     const hwsim::WorkProfile& work, SimDuration apply,
                     SimDuration measure);

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  SocketId socket_;
};

/// The whole-node transition-cost regime, the cluster-tier analogue of
/// the apply/measure times above. Where a socket configuration applies in
/// tens of microseconds, a node transition pays a boot of tens of seconds
/// at elevated power — three to six orders of magnitude apart, which is
/// why the cluster ECL needs its own calibrated hysteresis instead of
/// reusing the in-box dwell times.
struct NodeTransitionCost {
  SimDuration boot_latency = 0;
  /// Energy burned by one boot (boot power over the boot latency).
  double boot_energy_j = 0.0;
  /// Wall power while off (standby).
  double off_power_w = 0.0;
  /// Measured wall power of the fully idle node while on: machine idle
  /// draw plus the platform overhead — everything a power-down removes.
  double on_idle_power_w = 0.0;
  /// Minimum off duration for a power-down to save net energy: below
  /// this, the boot premium exceeds the off-state savings.
  double break_even_off_s = 0.0;
};

/// Measures node `n`'s transition economics by observing the cluster's
/// energy accounting over an idle window (consumes virtual time; the node
/// must be on and unloaded). The break-even compares staying on against
/// off-then-boot: savings accrue at (on_idle - off) W while off, the boot
/// repays (boot - on_idle) W over the boot latency.
NodeTransitionCost CalibrateNodeTransition(sim::Simulator* simulator,
                                           hwsim::Cluster* cluster, NodeId n,
                                           SimDuration measure = Seconds(1));

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_META_CALIBRATION_H_
