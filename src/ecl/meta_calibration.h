#ifndef ECLDB_ECL_META_CALIBRATION_H_
#define ECLDB_ECL_META_CALIBRATION_H_

#include <vector>

#include "common/types.h"
#include "hwsim/machine.h"
#include "hwsim/work_profile.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct MetaCalibrationParams {
  /// Generous reference durations.
  SimDuration reference_apply = Millis(300);
  SimDuration reference_measure = Millis(300);
  /// Candidate durations tried, descending.
  std::vector<SimDuration> candidates = {Millis(300), Millis(200), Millis(100),
                                         Millis(50),  Millis(20),  Millis(10),
                                         Millis(5),   Millis(2),   Millis(1)};
  /// Acceptable relative deviation from the reference measurement.
  double tolerance = 0.03;
  /// Probes averaged per candidate.
  int probes = 4;
};

/// Result of one calibration sweep step.
struct CalibrationPoint {
  SimDuration duration = 0;
  double deviation = 0.0;  // relative to the reference measurement
};

struct MetaCalibrationResult {
  SimDuration measure_time = 0;
  SimDuration apply_time = 0;
  std::vector<CalibrationPoint> measure_sweep;
  std::vector<CalibrationPoint> apply_sweep;
};

/// The ECL's startup meta-calibration (paper Section 5.1, Fig. 12):
/// determines how quickly configurations can be applied and how short the
/// counter measurement window may be. It takes a reference measurement
/// with generous times, then shortens the times step by step while
/// tracking the deviation — switching between the highest configuration
/// (all cores, maximum frequency) and the lowest (one core, minimum
/// frequency) for every probe, first calibrating the measure time, then
/// the apply time.
class MetaCalibration {
 public:
  MetaCalibration(sim::Simulator* simulator, hwsim::Machine* machine,
                  SocketId socket);

  /// Runs the calibration under the given synthetic workload; consumes
  /// virtual time on the simulator.
  MetaCalibrationResult Run(const hwsim::WorkProfile& work,
                            const MetaCalibrationParams& params);

 private:
  /// One probe: apply `cfg`, wait `apply`, measure power over `measure`.
  double ProbePowerW(const hwsim::SocketConfig& cfg,
                     const hwsim::WorkProfile& work, SimDuration apply,
                     SimDuration measure);

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  SocketId socket_;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_META_CALIBRATION_H_
