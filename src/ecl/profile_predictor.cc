#include "ecl/profile_predictor.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace ecldb::ecl {

ProfilePredictor::ProfilePredictor(int num_configs,
                                   const ProfilePredictorParams& params)
    : params_(params), num_configs_(num_configs) {
  ECLDB_CHECK(num_configs >= 1);
  ECLDB_CHECK(params.k >= 1 && params.max_entries_per_config >= 1);
  cache_.resize(static_cast<size_t>(num_configs));
}

void ProfilePredictor::Observe(int config_index,
                               const profile::FeatureVector& features,
                               double power_w, double perf_score, SimTime at) {
  if (!features.valid || config_index <= 0 || config_index >= num_configs_) {
    return;
  }
  if (features.v[2] < params_.min_utilization) return;
  ++observed_total_;
  std::vector<Observation>& bucket = cache_[static_cast<size_t>(config_index)];

  // Merge: a near-duplicate feature point carries the *newest* truth for
  // its neighborhood — replace it instead of accumulating history that a
  // drifted workload has invalidated.
  int nearest = -1;
  double nearest_d = params_.merge_radius;
  for (size_t i = 0; i < bucket.size(); ++i) {
    const double d = FeatureDistance(bucket[i].features, features);
    if (d <= nearest_d) {
      nearest_d = d;
      nearest = static_cast<int>(i);
    }
  }
  if (nearest >= 0) {
    bucket[static_cast<size_t>(nearest)] = {features, power_w, perf_score, at};
    return;
  }
  if (static_cast<int>(bucket.size()) >= params_.max_entries_per_config) {
    // Bounded cache: evict the oldest observation (ties by position).
    size_t oldest = 0;
    for (size_t i = 1; i < bucket.size(); ++i) {
      if (bucket[i].at < bucket[oldest].at) oldest = i;
    }
    bucket[oldest] = {features, power_w, perf_score, at};
    return;
  }
  bucket.push_back({features, power_w, perf_score, at});
  ++size_;
}

ProfilePredictor::Prediction ProfilePredictor::Predict(
    int config_index, const profile::FeatureVector& features) const {
  Prediction p;
  if (!features.valid || config_index <= 0 || config_index >= num_configs_) {
    return p;
  }
  const std::vector<Observation>& bucket =
      cache_[static_cast<size_t>(config_index)];
  if (bucket.empty()) return p;

  // Distances to every cached observation; k nearest with deterministic
  // tie-breaking by insertion order.
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(bucket.size());
  for (size_t i = 0; i < bucket.size(); ++i) {
    dist.emplace_back(FeatureDistance(bucket[i].features, features), i);
  }
  std::sort(dist.begin(), dist.end());
  const size_t k = std::min(dist.size(), static_cast<size_t>(params_.k));

  double wsum = 0.0, power = 0.0, perf = 0.0, dsum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const Observation& o = bucket[dist[i].second];
    const double w = 1.0 / (dist[i].first + 1e-3);
    wsum += w;
    power += w * o.power_w;
    perf += w * o.perf_score;
    dsum += w * dist[i].first;
  }
  p.power_w = power / wsum;
  p.perf_score = perf / wsum;

  // Ignorance: how far the evidence sits from the query, plus a penalty
  // for a thin neighborhood (fewer than k observations). The distance is
  // averaged with the same inverse-distance weights as the values, so it
  // tracks the evidence the prediction actually leans on: one on-point
  // observation means confidence even when the rest of the bucket belongs
  // to other work profiles, while a query between clusters (every
  // neighbor far) stays ignorant.
  const double mean_d = dsum / wsum;
  const double missing =
      static_cast<double>(params_.k - static_cast<int>(k)) /
      static_cast<double>(params_.k);
  p.ignorance = std::clamp(
      mean_d / params_.distance_scale + params_.count_penalty * missing, 0.0,
      1.0);
  return p;
}

const std::vector<ProfilePredictor::Observation>& ProfilePredictor::entries(
    int config_index) const {
  ECLDB_CHECK(config_index >= 0 && config_index < num_configs_);
  return cache_[static_cast<size_t>(config_index)];
}

void ProfilePredictor::Clear() {
  for (auto& bucket : cache_) bucket.clear();
  size_ = 0;
}

std::string SerializeLearnCache(const ProfilePredictor& predictor,
                                uint64_t fingerprint) {
  std::ostringstream out;
  out << "ecldb-learncache v1 " << predictor.num_configs() << ' '
      << fingerprint << ' ' << profile::kFeatureDims << '\n';
  for (int c = 1; c < predictor.num_configs(); ++c) {
    for (const ProfilePredictor::Observation& o : predictor.entries(c)) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%d %.17g %.17g %.17g %.17g %.17g %.17g %" PRId64 "\n", c,
                    o.features.v[0], o.features.v[1], o.features.v[2],
                    o.features.v[3], o.power_w, o.perf_score, o.at);
      out << line;
    }
  }
  return out.str();
}

bool DeserializeLearnCache(std::string_view text, uint64_t fingerprint,
                           ProfilePredictor* predictor) {
  ECLDB_CHECK(predictor != nullptr);
  std::istringstream in{std::string(text)};
  std::string header;
  if (!std::getline(in, header)) return false;
  {
    std::istringstream head(header);
    std::string magic, version, rest;
    int num_configs = 0, dims = 0;
    uint64_t fp = 0;
    if (!(head >> magic >> version >> num_configs >> fp >> dims)) return false;
    if (head >> rest) return false;  // trailing junk in the header
    if (magic != "ecldb-learncache" || version != "v1") return false;
    if (num_configs != predictor->num_configs() || fp != fingerprint ||
        dims != profile::kFeatureDims) {
      return false;
    }
  }

  // Parse every record before touching the cache (all-or-nothing load).
  // Line-based so a truncated record fails instead of blending into the
  // end of the stream.
  struct Record {
    int config;
    ProfilePredictor::Observation obs;
  };
  std::vector<Record> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Record r;
    int consumed = 0;
    if (std::sscanf(line.c_str(), "%d %lf %lf %lf %lf %lf %lf %" SCNd64 " %n",
                    &r.config, &r.obs.features.v[0], &r.obs.features.v[1],
                    &r.obs.features.v[2], &r.obs.features.v[3], &r.obs.power_w,
                    &r.obs.perf_score, &r.obs.at, &consumed) != 8 ||
        consumed != static_cast<int>(line.size())) {
      return false;
    }
    if (r.config <= 0 || r.config >= predictor->num_configs()) return false;
    if (r.obs.power_w < 0.0 || r.obs.perf_score < 0.0 || r.obs.at < 0) {
      return false;
    }
    for (double f : r.obs.features.v) {
      if (!std::isfinite(f) || f < 0.0 || f > 1.0) return false;
    }
    r.obs.features.valid = true;
    records.push_back(r);
  }

  predictor->Clear();
  for (const Record& rec : records) {
    predictor->Observe(rec.config, rec.obs.features, rec.obs.power_w,
                       rec.obs.perf_score, rec.obs.at);
  }
  return true;
}

}  // namespace ecldb::ecl
