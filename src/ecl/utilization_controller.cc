#include "ecl/utilization_controller.h"

#include <algorithm>

namespace ecldb::ecl {

double UtilizationController::Update(double utilization, double measured_rate,
                                     double current_level, double pressure,
                                     const profile::EnergyProfile& profile) const {
  utilization = std::clamp(utilization, 0.0, 1.0);
  pressure = std::clamp(pressure, 0.0, 1.0);

  const double peak = profile.PeakPerfScore();
  // The smallest meaningful level: the least performing measured config
  // throttled down to one RTI duty step.
  double floor_level = peak;
  for (int i = 1; i < profile.size(); ++i) {
    const profile::Configuration& c = profile.config(i);
    if (c.measured() && c.perf_score > 0.0) {
      floor_level = std::min(floor_level, c.perf_score);
    }
  }
  if (peak <= 0.0) return 0.0;
  floor_level *= 0.05;

  double demand;
  if (utilization >= params_.full_threshold) {
    const double factor =
        params_.discovery_factor * (1.0 + params_.pressure_boost * pressure);
    const double base =
        std::max({current_level, measured_rate, floor_level});
    demand = base * factor;
  } else {
    // Demand is observable (Eq. 3 in the measured currency: the processed
    // performance level equals the true demand below saturation), padded
    // with headroom and damped on the way down so a one-interval dip does
    // not throw capacity away.
    const double observed = measured_rate * params_.headroom;
    demand = std::max(observed, current_level * params_.max_decrease);
  }
  // Latency pressure keeps a floor under the performance level: while the
  // limit is threatened, the socket is "more eager to increase the
  // performance level" (paper Section 5.2).
  demand = std::max(demand, peak * pressure);
  return std::min(peak, demand);
}

}  // namespace ecldb::ecl
