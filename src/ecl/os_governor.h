#ifndef ECLDB_ECL_OS_GOVERNOR_H_
#define ECLDB_ECL_OS_GOVERNOR_H_

#include "common/types.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct OsGovernorParams {
  /// Sampling interval (Linux ondemand default order of magnitude).
  SimDuration interval = Millis(100);
  /// Utilization above which the governor jumps to the maximum frequency.
  double up_threshold = 0.80;
  /// The OS measures utilization as C0 (non-idle) residency. A
  /// data-oriented DBMS polls its message queues, so its threads never
  /// block: the OS sees 100 % utilization no matter the query load
  /// (paper Section 1: "hardware and operating system have almost no
  /// chance to appropriately configure the energy-related tuning knobs").
  /// Set false to model a hypothetical *blocking* DBMS whose idle threads
  /// actually sleep, giving the governor a usable signal.
  bool sees_polling_as_busy = true;
};

/// An operating-system CPU-frequency governor (ondemand-style): samples
/// utilization and scales the core frequency of all (always-active)
/// threads; the uncore clock stays in the hardware's automatic mode.
/// This is what a DBMS without integrated energy control gets.
class OsGovernor {
 public:
  OsGovernor(sim::Simulator* simulator, engine::Engine* engine,
             const OsGovernorParams& params);

  void Start();
  void Stop() { running_ = false; }

  double last_utilization() const { return last_util_; }
  double current_freq_ghz() const { return freq_ghz_; }

 private:
  void Tick();
  void Apply(double freq_ghz);

  sim::Simulator* simulator_;
  engine::Engine* engine_;
  OsGovernorParams params_;
  bool running_ = false;
  double last_util_ = 0.0;
  double freq_ghz_ = 0.0;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_OS_GOVERNOR_H_
