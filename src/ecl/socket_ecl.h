#ifndef ECLDB_ECL_SOCKET_ECL_H_
#define ECLDB_ECL_SOCKET_ECL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "common/types.h"
#include "ecl/profile_maintenance.h"
#include "ecl/profile_predictor.h"
#include "ecl/rti_controller.h"
#include "ecl/system_ecl.h"
#include "ecl/utilization_controller.h"
#include "hwsim/machine.h"
#include "profile/energy_profile.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct SocketEclParams {
  /// Base interval of the socket-level ECL (1 Hz in the paper; the
  /// evaluation also uses 2 Hz = 500 ms).
  SimDuration interval = Seconds(1);
  UtilizationControllerParams utilization;
  RtiControllerParams rti;
  ProfileMaintenanceParams maintenance;
  /// Learned profile predictor (off by default): on drift, the profile is
  /// seeded from kNN predictions over work-profile features and the
  /// multiplexed evaluator only measures configurations whose ignorance
  /// exceeds the threshold — a recurring workload re-converges after a
  /// handful of confirming measurements instead of a full sweep.
  ProfilePredictorParams predictor;
  /// Counter measurement window for profile (re)evaluation; found by the
  /// meta calibration (paper Fig. 12: 100 ms).
  SimDuration measure_time = Millis(100);
  /// Settle time after applying a configuration before measuring (1 ms).
  SimDuration apply_settle = Millis(1);
  /// Fraction of an interval that may be spent on multiplexed
  /// reevaluation.
  double max_eval_fraction = 0.75;
  /// Excludes the idle-polling instructions of workless active threads
  /// from the measured performance level. The paper's currency counts all
  /// instructions retired, so a consolidated receiver socket running many
  /// mostly-idle threads overstates its demand — the poll loops retire
  /// instructions at full rate — which keeps the configuration wider than
  /// the real work needs. With this set, the demand estimate tracks work
  /// actually processed. Off by default (the paper's literal signal).
  bool exclude_poll_instructions = false;
  /// Optional telemetry context: control-state gauges, tick spans with
  /// the decision reason, and drift/park instants.
  telemetry::Telemetry* telemetry = nullptr;
};

/// One socket-level ECL (paper Section 5.1): a reactive control loop,
/// executed periodically, that (1) determines the socket's performance
/// demand from worker utilization, (2) applies the most energy-efficient
/// configuration for that demand from its energy profile, (3) runs the
/// race-to-idle controller in the under-utilization zone, and (4) keeps
/// the energy profile fresh through online and multiplexed adaptation.
class SocketEcl {
 public:
  /// `util_source` returns the socket's worker utilization since the last
  /// call (Engine::TakeSocketUtilization). `system` may be null (no
  /// latency constraint — pressure 0).
  SocketEcl(sim::Simulator* simulator, hwsim::Machine* machine, SocketId socket,
            profile::EnergyProfile profile, SystemEcl* system,
            std::function<double()> util_source, const SocketEclParams& params);

  void Start();
  void Stop();

  SocketId socket() const { return socket_; }
  profile::EnergyProfile& profile() { return profile_; }
  const profile::EnergyProfile& profile() const { return profile_; }
  ProfileMaintenance& maintenance() { return maintenance_; }
  /// Non-null iff the learned predictor was enabled in the params.
  ProfilePredictor* predictor() { return predictor_.get(); }
  /// Work-profile feature snapshot of the last loaded interval.
  const profile::FeatureVector& last_features() const { return last_features_; }

  double performance_level() const { return perf_level_; }
  int current_config_index() const { return current_index_; }
  const RtiController::Plan& last_plan() const { return last_plan_; }
  double last_utilization() const { return last_utilization_; }
  /// Measured performance level (instr/s) of the last finished interval,
  /// after the optional poll-instruction exclusion.
  double last_measured_rate() const { return last_measured_rate_; }
  int64_t ticks() const { return ticks_; }

  /// Declares a workload change (flags the profile for reevaluation);
  /// normally drift detection does this automatically.
  void FlagWorkloadChange() { maintenance_.FlagDrift(&profile_); }

  /// Consolidation hook: when set and returning true at a tick, the
  /// socket is parked — it homes no partitions, so the loop holds the
  /// idle configuration (letting the firmware reach the deep package
  /// C-state) and skips control and adaptation until partitions return.
  void SetParkCheck(std::function<bool()> parked) {
    park_check_ = std::move(parked);
  }
  /// True while the last tick parked the socket.
  bool parked() const { return parked_; }

  /// Consolidation hook: returns the socket's queued-but-unserved work
  /// (Scheduler::BacklogOps). The utilization signal is measured relative
  /// to the *active* workers, so a socket whose threads are all asleep
  /// reads utilization 0 even while work queues up — with dynamic
  /// placement that state is reachable (stale routed arrivals, migration
  /// copy work land on a drained socket). When set, a tick whose backlog
  /// exceeds what the offered level could drain in about one interval
  /// treats the socket as saturated and drains at peak (race-to-idle)
  /// instead of decaying further.
  void SetBacklogCheck(std::function<double()> backlog) {
    backlog_check_ = std::move(backlog);
  }

 private:
  void Tick();
  /// Drift response: invalidate the profile and — with the predictor on —
  /// arm a deferred seeding pass so only high-ignorance configurations
  /// need real multiplexed measurements.
  void HandleDrift(SimTime now);
  /// Seeds the invalidated profile from predictions for the current
  /// feature snapshot (deferred from HandleDrift by one interval).
  void RunPendingSeed(SimTime now);
  void ApplyConfig(int index);
  void ApplyIdle();
  /// Schedules one evaluation (apply/settle/measure/record) starting at
  /// `at`; events are guarded by the current generation.
  void ScheduleEvaluation(SimTime at, int index, int64_t gen);
  void ScheduleRti(SimTime from, SimTime until, const RtiController::Plan& plan,
                   int64_t gen);
  uint64_t ReadSocketEnergyUj() const;

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  SocketId socket_;
  profile::EnergyProfile profile_;
  SystemEcl* system_;
  std::function<double()> util_source_;
  SocketEclParams params_;

  UtilizationController util_controller_;
  RtiController rti_controller_;
  ProfileMaintenance maintenance_;
  std::unique_ptr<ProfilePredictor> predictor_;
  profile::FeatureVector last_features_;
  /// Seeding writes predictions through EnergyProfile::Record; the hook
  /// is muted so the predictor never re-trains on its own output.
  bool record_hook_muted_ = false;
  /// Set by HandleDrift; the next interval tick runs the seeding pass
  /// with its clean post-switch feature snapshot.
  bool pending_seed_ = false;

  bool running_ = false;
  int64_t generation_ = 0;
  int64_t ticks_ = 0;
  std::function<bool()> park_check_;
  std::function<double()> backlog_check_;
  bool parked_ = false;
  double perf_level_ = 0.0;
  int current_index_ = -1;
  RtiController::Plan last_plan_;
  double last_utilization_ = 0.0;
  double last_measured_rate_ = 0.0;
  int trace_lane_ = 0;  // "ecl/socket{S}" lane when telemetry is attached

  /// Online-adaptation measurement state for the running interval.
  bool interval_clean_ = false;
  int interval_config_ = -1;
  uint64_t interval_e0_uj_ = 0;
  uint64_t interval_i0_ = 0;
  uint64_t interval_poll0_ = 0;
  double interval_bytes0_ = 0.0;
  SimTime interval_t0_ = 0;

  /// RTI active-phase accumulators: during race-to-idle the queued work
  /// concentrates into the active windows, so they measure the applied
  /// configuration at effectively full load (online adaptation input).
  uint64_t rti_phase_e0_uj_ = 0;
  uint64_t rti_phase_i0_ = 0;
  SimTime rti_phase_t0_ = 0;
  double rti_active_energy_uj_ = 0.0;
  double rti_active_instr_ = 0.0;
  SimDuration rti_active_time_ = 0;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_SOCKET_ECL_H_
