#ifndef ECLDB_ECL_BASELINE_H_
#define ECLDB_ECL_BASELINE_H_

#include "hwsim/machine.h"

namespace ecldb::ecl {

/// The paper's baseline: no DBMS energy control. All hardware threads are
/// active, core frequencies are requested at maximum (turbo), the uncore
/// clock follows the CPU's automatic uncore frequency scaling, and the EPB
/// stays at its (balanced) default — "all available hardware threads with
/// CPU and OS frequency control resembling a race-to-idle strategy"
/// (Section 6.1). Because the polling DBMS never blocks, threads never
/// enter sleep states.
class BaselineController {
 public:
  explicit BaselineController(hwsim::Machine* machine) : machine_(machine) {}

  /// Applies the baseline configuration once; the hardware then manages
  /// itself.
  void Start();

 private:
  hwsim::Machine* machine_;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_BASELINE_H_
