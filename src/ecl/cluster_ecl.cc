#include "ecl/cluster_ecl.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ecldb::ecl {

ClusterEcl::ClusterEcl(sim::Simulator* simulator,
                       engine::ClusterEngine* engine, LoadFn load,
                       PressureFn pressure, const ClusterEclParams& params)
    : simulator_(simulator),
      engine_(engine),
      load_(std::move(load)),
      pressure_(std::move(pressure)),
      params_(params) {
  ECLDB_CHECK(simulator != nullptr && engine != nullptr);
  ECLDB_CHECK(load_ != nullptr && pressure_ != nullptr);
  ECLDB_CHECK(params_.min_nodes_on >= 1);
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("cluster/ecl/ticks", [this] { return ticks_; });
    reg.AddCounterFn("cluster/ecl/consolidation_moves",
                     [this] { return consolidation_moves_; });
    reg.AddCounterFn("cluster/ecl/spread_moves",
                     [this] { return spread_moves_; });
    reg.AddCounterFn("cluster/ecl/power_downs",
                     [this] { return power_downs_; });
    reg.AddCounterFn("cluster/ecl/wakes", [this] { return wakes_; });
    trace_lane_ = tel->trace().RegisterLane("cluster/ecl");
  }
}

void ClusterEcl::SetNodeHooks(NodeHook on_power_down, NodeHook on_booted) {
  on_power_down_ = std::move(on_power_down);
  on_booted_ = std::move(on_booted);
}

void ClusterEcl::Start() {
  running_ = true;
  simulator_->ScheduleAfter(params_.interval, [this] { Tick(); });
}

double ClusterEcl::ClusterPressure() const {
  hwsim::Cluster& cluster = engine_->cluster();
  double p = 0.0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.IsOn(n)) p = std::max(p, pressure_(n));
  }
  return p;
}

void ClusterEcl::Tick() {
  if (!running_) return;
  ++ticks_;
  const int64_t done = engine_->migrations_completed();
  if (done != last_completed_seen_) {
    last_completed_seen_ = done;
    last_migration_time_ = simulator_->now();
  }
  const double pressure = ClusterPressure();

  // Set ECLDB_CLUSTER_DEBUG=1 to trace every policy tick (same idiom as
  // ECLDB_DRIFT_DEBUG in the drift experiment).
  static const bool debug = std::getenv("ECLDB_CLUSTER_DEBUG") != nullptr;
  if (debug) {
    hwsim::Cluster& cluster = engine_->cluster();
    std::fprintf(stderr, "[cluster-ecl] t=%.1fs pressure=%.3f active=%d",
                 ToSeconds(simulator_->now()), pressure,
                 engine_->active_migrations());
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      std::fprintf(stderr, " n%d:%s/p%d/l%.2f", n,
                   cluster.IsOn(n)
                       ? "on"
                       : (cluster.state(n) == hwsim::Cluster::NodeState::kOff
                              ? "off"
                              : "boot"),
                   engine_->placement().PartitionsOn(n), load_(n));
    }
    std::fprintf(stderr, " moves=c%lld/s%lld downs=%lld wakes=%lld\n",
                 static_cast<long long>(consolidation_moves_),
                 static_cast<long long>(spread_moves_),
                 static_cast<long long>(power_downs_),
                 static_cast<long long>(wakes_));
  }

  // Wakes run before anything else, every tick: capacity arrives a boot
  // latency late, so deferring a needed wake behind migration settling
  // would double the reaction time.
  const bool woke = TryWake(pressure);

  if (!woke && engine_->active_migrations() == 0) {
    const bool holding =
        last_migration_time_ >= 0 &&
        simulator_->now() - last_migration_time_ < params_.post_migration_hold;
    const bool spread_gated =
        holding && last_direction_ == Direction::kConsolidate;
    const bool consolidate_gated =
        holding && last_direction_ == Direction::kSpread;
    if (!spread_gated && pressure >= params_.wake_pressure_min) {
      Spread();
    } else if (!consolidate_gated &&
               pressure <= params_.consolidate_pressure_max) {
      Consolidate();
    }
    // A drained node powers down whenever pressure sits below the spread
    // threshold — spread is the only thing that would repopulate it, so
    // gating on the tighter consolidation threshold would strand empty
    // nodes at full platform power once the receiver's pressure rises
    // past it.
    if (pressure < params_.wake_pressure_min) MaybePowerDown();
  }
  simulator_->ScheduleAfter(params_.interval, [this] { Tick(); });
}

bool ClusterEcl::TryWake(double pressure) {
  hwsim::Cluster& cluster = engine_->cluster();
  // Stranded backlog: work that shipped toward a node which powered down
  // before the pressure signal reflects it sits in that node's queues
  // with no engine serving them. Backlog on ON nodes is just queueing —
  // the pressure signal covers it — and must not count, or any standing
  // queue would instantly undo every power-down.
  double backlog = 0.0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.IsOn(n)) backlog += engine_->BacklogOps(n);
  }
  const bool hard = pressure >= params_.wake_pressure_hard;
  const bool wanted = hard || pressure >= params_.wake_pressure_min ||
                      backlog >= params_.wake_backlog_ops;
  if (!wanted) return false;
  // A boot already in flight is the wake in progress; only hard pressure
  // stacks another node on top of it.
  if (!hard) {
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      if (cluster.state(n) == hwsim::Cluster::NodeState::kBooting) {
        return false;
      }
    }
  }
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.state(n) != hwsim::Cluster::NodeState::kOff) continue;
    // Crashed hardware is not spare capacity: waking it would burn a boot
    // and give nothing back. The wake hysteresis only sees healthy nodes.
    if (cluster.IsFailed(n)) continue;
    ++wakes_;
    if (params_.telemetry != nullptr) {
      params_.telemetry->trace().Instant(
          trace_lane_, "cluster", "wake", simulator_->now(),
          "\"node\":" + std::to_string(n) +
              ",\"pressure\":" + telemetry::JsonNumber(pressure) +
              ",\"backlog\":" + telemetry::JsonNumber(backlog));
    }
    cluster.PowerUp(n, [this, n] {
      if (on_booted_ != nullptr) on_booted_(n);
    });
    return true;
  }
  return false;
}

void ClusterEcl::Consolidate() {
  hwsim::Cluster& cluster = engine_->cluster();
  engine::PlacementMap& placement = engine_->placement();

  // Donor: least-loaded ON node still homing partitions; receiver: the
  // most-loaded other ON node. Ties resolve to the lower node id.
  NodeId donor = -1, receiver = -1;
  double donor_load = 0.0, receiver_load = 0.0;
  int populated_on = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.IsOn(n) || placement.PartitionsOn(n) == 0) continue;
    ++populated_on;
    const double l = load_(n);
    if (donor == -1 || l < donor_load) {
      donor = n;
      donor_load = l;
    }
  }
  if (populated_on < 2) return;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (n == donor || !cluster.IsOn(n) || placement.PartitionsOn(n) == 0) {
      continue;
    }
    const double l = load_(n);
    if (receiver == -1 || l > receiver_load) {
      receiver = n;
      receiver_load = l;
    }
  }
  if (donor_load > params_.donor_load_max) return;
  if (receiver_load + donor_load > params_.target_load_ceiling) return;

  const std::vector<PartitionId> parts = placement.PartitionsOf(donor);
  const int moves = std::min<int>(params_.migrations_per_tick,
                                  static_cast<int>(parts.size()));
  int started = 0;
  for (int i = 0; i < moves; ++i) {
    if (engine_->StartMigration(parts[static_cast<size_t>(i)], receiver)) {
      ++consolidation_moves_;
      last_direction_ = Direction::kConsolidate;
      ++started;
    }
  }
  if (started > 0 && params_.telemetry != nullptr) {
    params_.telemetry->trace().Instant(
        trace_lane_, "cluster", "consolidate_batch", simulator_->now(),
        "\"donor\":" + std::to_string(donor) +
            ",\"receiver\":" + std::to_string(receiver) +
            ",\"migrations\":" + std::to_string(started));
  }
}

void ClusterEcl::Spread() {
  hwsim::Cluster& cluster = engine_->cluster();
  engine::PlacementMap& placement = engine_->placement();

  // Push partitions from the fullest ON node onto the emptiest ON node
  // (typically one just woken, holding nothing), preferring partitions
  // whose initial home was the destination.
  NodeId src = -1, dst = -1;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.IsOn(n)) continue;
    if (src == -1 || placement.PartitionsOn(n) > placement.PartitionsOn(src)) {
      src = n;
    }
    if (dst == -1 || placement.PartitionsOn(n) < placement.PartitionsOn(dst)) {
      dst = n;
    }
  }
  if (src == -1 || dst == -1 || src == dst ||
      placement.PartitionsOn(src) - placement.PartitionsOn(dst) < 2) {
    return;
  }

  std::vector<PartitionId> candidates = placement.PartitionsOf(src);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](PartitionId a, PartitionId b) {
                     return (placement.InitialHomeOf(a) == dst) >
                            (placement.InitialHomeOf(b) == dst);
                   });
  const int gap = placement.PartitionsOn(src) - placement.PartitionsOn(dst);
  const int moves =
      std::min<int>({params_.spread_migrations_per_tick, gap / 2,
                     static_cast<int>(candidates.size())});
  int started = 0;
  for (int i = 0; i < moves; ++i) {
    if (engine_->StartMigration(candidates[static_cast<size_t>(i)], dst)) {
      ++spread_moves_;
      last_direction_ = Direction::kSpread;
      ++started;
    }
  }
  if (started > 0 && params_.telemetry != nullptr) {
    params_.telemetry->trace().Instant(
        trace_lane_, "cluster", "spread_batch", simulator_->now(),
        "\"src\":" + std::to_string(src) + ",\"dst\":" + std::to_string(dst) +
            ",\"migrations\":" + std::to_string(started));
  }
}

void ClusterEcl::MaybePowerDown() {
  hwsim::Cluster& cluster = engine_->cluster();
  engine::PlacementMap& placement = engine_->placement();
  if (cluster.NodesOn() <= params_.min_nodes_on) return;
  // Crash recovery in progress: survivors are absorbing re-homed
  // partitions and retries; do not shrink capacity into that transient.
  if (cluster.last_crash_time() >= 0 &&
      simulator_->now() - cluster.last_crash_time() <
          params_.crash_recovery_hold) {
    return;
  }
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.IsFailed(n)) return;
  }
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.IsOn(n)) continue;
    if (placement.PartitionsOn(n) != 0) continue;
    if (engine_->NodeInvolvedInMigration(n)) continue;
    // The fluid scheduler can leave a sub-operation float residue in a
    // drained queue; anything below one operation is numerical noise, not
    // pending work.
    if (engine_->BacklogOps(n) >= 1.0) continue;
    // Boot-amortisation half of the hysteresis: a node that just booted
    // must stay on long enough that the boot energy was not wasted.
    if (simulator_->now() - cluster.StateSince(n) < params_.min_on_time) {
      continue;
    }
    if (on_power_down_ != nullptr) on_power_down_(n);
    cluster.PowerDown(n);
    ++power_downs_;
    if (params_.telemetry != nullptr) {
      params_.telemetry->trace().Instant(trace_lane_, "cluster", "power_down",
                                         simulator_->now(),
                                         "\"node\":" + std::to_string(n));
    }
    return;  // at most one power-down per tick
  }
}

}  // namespace ecldb::ecl
