#include "ecl/ecl.h"

#include "common/check.h"
#include "hwsim/firmware.h"

namespace ecldb::ecl {

EnergyControlLoop::EnergyControlLoop(sim::Simulator* simulator,
                                     engine::Engine* engine,
                                     const EclParams& params)
    : simulator_(simulator), engine_(engine), params_(params) {
  ECLDB_CHECK(simulator != nullptr && engine != nullptr);
  hwsim::Machine& machine = engine_->machine();
  system_ = std::make_unique<SystemEcl>(simulator_, &engine_->latency(),
                                        params_.system);
  if (params_.telemetry != nullptr) {
    params_.socket.telemetry = params_.telemetry;
    params_.consolidation.telemetry = params_.telemetry;
    params_.telemetry->registry().AddGauge(
        "ecl/pressure", [this] { return system_->pressure(); });
  }

  profile::ConfigGenerator generator(machine.topology(), machine.freqs());
  for (SocketId s = 0; s < machine.topology().num_sockets; ++s) {
    profile::EnergyProfile profile(generator.Generate(params_.generator));
    sockets_.push_back(std::make_unique<SocketEcl>(
        simulator_, &machine, s, std::move(profile), system_.get(),
        [this, s] { return engine_->TakeSocketUtilization(s); },
        params_.socket));
  }

  if (params_.consolidation.enabled || params_.placement_hooks) {
    for (SocketId s = 0; s < machine.topology().num_sockets; ++s) {
      sockets_[static_cast<size_t>(s)]->SetParkCheck(
          [this, s] { return engine_->placement().PartitionsOn(s) == 0; });
      sockets_[static_cast<size_t>(s)]->SetBacklogCheck(
          [this, s] { return engine_->scheduler().BacklogOps(s); });
    }
  }
  if (params_.consolidation.enabled) {
    consolidation_ = std::make_unique<ConsolidationPolicy>(
        simulator_, engine_, system_.get(),
        // Relative load: the processed performance level over the
        // profile's peak score (same currency the experiment samplers
        // report as perf_level_frac).
        [this](SocketId s) {
          const SocketEcl& se = *sockets_[static_cast<size_t>(s)];
          const double peak = se.profile().PeakPerfScore();
          return peak > 0.0 ? se.performance_level() / peak : 0.0;
        },
        params_.consolidation);
  }
}

void EnergyControlLoop::Start() {
  hwsim::Machine& machine = engine_->machine();
  if (params_.set_epb_performance) {
    machine.SetEpb(hwsim::EpbSetting::kPerformance);
  }
  for (SocketId s = 0; s < machine.topology().num_sockets; ++s) {
    machine.SetUncoreMode(s, hwsim::UncoreMode::kPinned);
  }
  system_->Start();
  for (auto& socket : sockets_) socket->Start();
  if (consolidation_ != nullptr) consolidation_->Start();
}

void EnergyControlLoop::Stop() {
  system_->Stop();
  for (auto& socket : sockets_) socket->Stop();
  if (consolidation_ != nullptr) consolidation_->Stop();
}

void EnergyControlLoop::FlagWorkloadChange() {
  for (auto& socket : sockets_) socket->FlagWorkloadChange();
}

void EnergyControlLoop::SetAdaptation(bool online, bool multiplexed) {
  for (auto& socket : sockets_) {
    socket->maintenance().SetEnabled(online, multiplexed);
  }
}

}  // namespace ecldb::ecl
