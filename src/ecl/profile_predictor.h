#ifndef ECLDB_ECL_PROFILE_PREDICTOR_H_
#define ECLDB_ECL_PROFILE_PREDICTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "profile/feature_vector.h"

namespace ecldb::ecl {

struct ProfilePredictorParams {
  /// Master switch. Off by default: every paper figure runs the paper's
  /// exhaustive multiplexed rediscovery unchanged.
  bool enabled = false;
  /// Neighbors consulted per prediction (distance-weighted kNN).
  int k = 3;
  /// Learn-cache bound per configuration; the oldest observation is
  /// evicted when a configuration's bucket is full.
  int max_entries_per_config = 8;
  /// An observation closer than this to an existing one replaces it
  /// instead of growing the bucket (the cache tracks the newest
  /// measurement per feature neighborhood, AQO-style).
  double merge_radius = 0.03;
  /// Seed a configuration from its prediction only when the ignorance is
  /// at or below this; above it the configuration stays stale and the
  /// multiplexed evaluator measures it for real.
  double ignorance_threshold = 0.15;
  /// Mean neighbor distance at which distance ignorance saturates to 1.
  double distance_scale = 0.25;
  /// Additional ignorance per missing neighbor (fraction of k).
  double count_penalty = 0.05;
  /// Feature snapshots from intervals below this utilization are
  /// discarded (idle intervals do not describe the workload).
  double min_utilization = 0.05;
};

/// Online learned model of (work-profile features, configuration) ->
/// (power, performance), fed from every energy-profile measurement and
/// queried on workload drift to seed the invalidated profile (ROADMAP
/// item 3, after postgrespro/aqo's learn-cache + ignorance loop).
///
/// Storage is a bounded per-configuration bucket of observations; lookup
/// is distance-weighted kNN over the feature space with an explicit
/// ignorance score, so the caller can distinguish "seen this workload
/// before" from extrapolation. Everything is deterministic: ties are
/// broken by insertion order.
class ProfilePredictor {
 public:
  struct Observation {
    profile::FeatureVector features;
    double power_w = 0.0;
    double perf_score = 0.0;
    SimTime at = 0;
  };

  struct Prediction {
    double power_w = 0.0;
    double perf_score = 0.0;
    /// 0 = confident (near neighbors, full k), 1 = no basis at all.
    double ignorance = 1.0;
  };

  /// `num_configs` is the energy profile's size (index 0 = idle is never
  /// observed or predicted).
  ProfilePredictor(int num_configs, const ProfilePredictorParams& params);

  /// Records one measurement of `config_index` taken while the workload
  /// looked like `features`. Invalid features are ignored.
  void Observe(int config_index, const profile::FeatureVector& features,
               double power_w, double perf_score, SimTime at);

  /// Predicts (power, performance) of `config_index` for the workload
  /// described by `features`.
  Prediction Predict(int config_index,
                     const profile::FeatureVector& features) const;

  int num_configs() const { return num_configs_; }
  const ProfilePredictorParams& params() const { return params_; }
  /// Total observations currently cached.
  int64_t size() const { return size_; }
  /// Observations ever fed (diagnostics; merges and evictions included).
  int64_t observed_total() const { return observed_total_; }
  /// Observations of one configuration, oldest-insertion first.
  const std::vector<Observation>& entries(int config_index) const;

  void Clear();

 private:
  ProfilePredictorParams params_;
  int num_configs_;
  std::vector<std::vector<Observation>> cache_;  // [config_index]
  int64_t size_ = 0;
  int64_t observed_total_ = 0;
};

/// Serializes the learn-cache so experiments (and a DBMS restart) can
/// prime a trained predictor. Companion of the profile serialization
/// format (line-based, all-or-nothing load); `fingerprint` must be the
/// LearnCacheFingerprint of the profile the predictor belongs to and the
/// machine shape it was trained on (a cache from a different node shape
/// must be rejected, not silently loaded).
///
/// Format:
///   ecldb-learncache v1 <num_configs> <fingerprint> <feature_dims>
///   <config> <f0> .. <f3> <power_w> <perf_score> <at_ns>
///   ...
std::string SerializeLearnCache(const ProfilePredictor& predictor,
                                uint64_t fingerprint);

/// Loads a serialized learn-cache. Returns false (leaving the predictor
/// untouched) when the header, fingerprint, dimensionality, or any record
/// is invalid.
bool DeserializeLearnCache(std::string_view text, uint64_t fingerprint,
                           ProfilePredictor* predictor);

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_PROFILE_PREDICTOR_H_
