#ifndef ECLDB_ECL_CLUSTER_ECL_H_
#define ECLDB_ECL_CLUSTER_ECL_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "engine/cluster_engine.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace ecldb::ecl {

struct ClusterEclParams {
  /// Master switch; default off so single-node runs are byte-identical.
  bool enabled = false;
  /// Policy tick interval. Slower than the in-box consolidation cadence:
  /// node transitions cost tens of seconds, so the policy reacts at a
  /// matching timescale.
  SimDuration interval = Seconds(2);
  /// Consolidate across nodes only while every ON node's latency
  /// pressure is at or below this.
  double consolidate_pressure_max = 0.15;
  /// Only nodes at or below this relative load donate their partitions.
  double donor_load_max = 0.45;
  /// Projected receiver load (its own plus the donor's) must stay below
  /// this to consolidate.
  double target_load_ceiling = 0.6;
  /// Node-scope migrations started per tick (staged, like in-box
  /// consolidation, so receiving ECLs re-size between batches).
  int migrations_per_tick = 4;
  /// Spread migrations per tick once a woken node is serving-capable.
  int spread_migrations_per_tick = 8;
  /// Wake an off node at this pressure. Deliberately BELOW the in-box
  /// spread threshold (0.5): new capacity arrives a whole boot latency
  /// after the decision, so the wake must lead the pressure ramp instead
  /// of reacting to it — the boot-latency-aware half of the hysteresis.
  double wake_pressure_min = 0.35;
  /// At or above this pressure a wake fires regardless of dwell state.
  double wake_pressure_hard = 0.9;
  /// Fluid backlog on any node that also triggers a wake (covers work
  /// shipped to a node that powered down before the pressure signal
  /// reflects it).
  double wake_backlog_ops = 1e6;
  /// A node must have been ON at least this long before it may power
  /// down again — the other half of the hysteresis: a boot costs
  /// boot_power x boot_latency up front, so short on/off cycles burn
  /// more than they save (see CalibrateNodeTransition::break_even_off_s).
  SimDuration min_on_time = Seconds(60);
  /// After any node-scope migration completes, hold placement reversals
  /// this long (same dwell rationale as the in-box policy, scaled up).
  SimDuration post_migration_hold = Seconds(30);
  /// Never power below this many nodes.
  int min_nodes_on = 1;
  /// After a node crash (hwsim::Cluster::Crash), hold all policy
  /// power-downs this long: the survivors are absorbing the re-homed
  /// partitions and the retrying crowd, and shrinking capacity into that
  /// transient turns a fault into an overload. Failed nodes themselves
  /// are never wake candidates until the fault schedule clears them.
  SimDuration crash_recovery_hold = Seconds(30);
  /// Optional telemetry: tick/move counters plus instants for each
  /// power-down/wake decision on a "cluster/ecl" lane.
  telemetry::Telemetry* telemetry = nullptr;
};

/// The cluster tier of the ECL hierarchy: does across boxes what
/// ConsolidationPolicy does within one. At low pressure it live-migrates
/// partitions off the least-loaded node; once that node is drained (no
/// partitions, no backlog, no migration touching it) it powers the node
/// down, eliminating the platform overhead that package sleep cannot
/// reach. Rising pressure or backlog wakes an off node — early, because
/// capacity arrives a boot latency late — and spreads partitions back
/// onto it once it is serving-capable.
///
/// The policy only reads node-scope signals (per-node pressure/load fed
/// in as callbacks, cluster placement, fluid backlog); the per-node
/// EnergyControlLoops keep running their own socket/system tiers
/// unchanged underneath.
class ClusterEcl {
 public:
  /// Relative load of a node in [0, 1] (0 for off nodes).
  using LoadFn = std::function<double(NodeId)>;
  /// Latency pressure of a node's system ECL in [0, 1].
  using PressureFn = std::function<double(NodeId)>;
  /// Node lifecycle hook (stop a node's ECL before power-down, restart
  /// it when the node has booted).
  using NodeHook = std::function<void(NodeId)>;

  ClusterEcl(sim::Simulator* simulator, engine::ClusterEngine* engine,
             LoadFn load, PressureFn pressure, const ClusterEclParams& params);

  ClusterEcl(const ClusterEcl&) = delete;
  ClusterEcl& operator=(const ClusterEcl&) = delete;

  /// Hooks run synchronously: `on_power_down` just before a node powers
  /// down, `on_booted` when a woken node reaches kOn.
  void SetNodeHooks(NodeHook on_power_down, NodeHook on_booted);

  void Start();
  void Stop() { running_ = false; }

  int64_t ticks() const { return ticks_; }
  int64_t consolidation_moves() const { return consolidation_moves_; }
  int64_t spread_moves() const { return spread_moves_; }
  int64_t power_downs() const { return power_downs_; }
  int64_t wakes() const { return wakes_; }

 private:
  void Tick();
  /// Max pressure over ON nodes (off/booting nodes serve nothing).
  double ClusterPressure() const;
  bool TryWake(double pressure);
  void Consolidate();
  void Spread();
  void MaybePowerDown();

  sim::Simulator* simulator_;
  engine::ClusterEngine* engine_;
  LoadFn load_;
  PressureFn pressure_;
  ClusterEclParams params_;
  NodeHook on_power_down_;
  NodeHook on_booted_;

  bool running_ = false;
  int64_t ticks_ = 0;
  int64_t consolidation_moves_ = 0;
  int64_t spread_moves_ = 0;
  int64_t power_downs_ = 0;
  int64_t wakes_ = 0;
  int trace_lane_ = 0;  // "cluster/ecl" lane when telemetry is attached
  enum class Direction { kNone, kConsolidate, kSpread };
  int64_t last_completed_seen_ = 0;
  SimTime last_migration_time_ = -1;
  Direction last_direction_ = Direction::kNone;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_CLUSTER_ECL_H_
