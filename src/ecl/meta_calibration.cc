#include "ecl/meta_calibration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecldb::ecl {

MetaCalibration::MetaCalibration(sim::Simulator* simulator,
                                 hwsim::Machine* machine, SocketId socket)
    : simulator_(simulator), machine_(machine), socket_(socket) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
}

double MetaCalibration::ProbePowerW(const hwsim::SocketConfig& cfg,
                                    const hwsim::WorkProfile& work,
                                    SimDuration apply, SimDuration measure) {
  const hwsim::Topology& topo = machine_->topology();
  machine_->ApplySocketConfig(socket_, cfg);
  for (int lt = 0; lt < topo.threads_per_socket(); ++lt) {
    const HwThreadId t = socket_ * topo.threads_per_socket() + lt;
    machine_->SetThreadLoad(t, cfg.ThreadActive(lt) ? &work : nullptr,
                            cfg.ThreadActive(lt) ? 1.0 : 0.0);
  }
  simulator_->RunFor(apply);
  const uint64_t e0 = machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kPackage) +
                      machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kDram);
  simulator_->RunFor(measure);
  const uint64_t e1 = machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kPackage) +
                      machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kDram);
  return static_cast<double>(static_cast<int64_t>(e1 - e0)) * 1e-6 /
         ToSeconds(measure);
}

MetaCalibrationResult MetaCalibration::Run(const hwsim::WorkProfile& work,
                                           const MetaCalibrationParams& params) {
  const hwsim::Topology& topo = machine_->topology();
  const hwsim::FrequencyTable& freqs = machine_->freqs();
  const hwsim::SocketConfig highest = hwsim::SocketConfig::AllOn(
      topo, freqs.max_core_nominal(), freqs.max_uncore());
  const hwsim::SocketConfig lowest = hwsim::SocketConfig::FirstThreads(
      topo, 1, freqs.min_core(), freqs.min_uncore());

  MetaCalibrationResult result;

  // Reference: alternate highest/lowest with generous times. The lowest
  // configuration dominates the deviation (its absolute power is small),
  // so deviations are tracked on it.
  double ref_low = 0.0;
  for (int p = 0; p < params.probes; ++p) {
    ProbePowerW(highest, work, params.reference_apply, params.reference_measure);
    ref_low += ProbePowerW(lowest, work, params.reference_apply,
                           params.reference_measure);
  }
  ref_low /= params.probes;
  ECLDB_CHECK(ref_low > 0.0);

  // Sweep the measure time (apply time stays at the reference).
  result.measure_time = params.reference_measure;
  for (SimDuration cand : params.candidates) {
    double dev = 0.0;
    for (int p = 0; p < params.probes; ++p) {
      ProbePowerW(highest, work, params.reference_apply, cand);
      const double low = ProbePowerW(lowest, work, params.reference_apply, cand);
      dev += std::abs(low - ref_low) / ref_low;
    }
    dev /= params.probes;
    result.measure_sweep.push_back({cand, dev});
    if (dev <= params.tolerance) result.measure_time = cand;
  }

  // Sweep the apply time using the chosen measure time.
  result.apply_time = params.reference_apply;
  for (SimDuration cand : params.candidates) {
    double dev = 0.0;
    for (int p = 0; p < params.probes; ++p) {
      ProbePowerW(highest, work, cand, result.measure_time);
      const double low = ProbePowerW(lowest, work, cand, result.measure_time);
      dev += std::abs(low - ref_low) / ref_low;
    }
    dev /= params.probes;
    result.apply_sweep.push_back({cand, dev});
    if (dev <= params.tolerance) result.apply_time = cand;
  }
  return result;
}

NodeTransitionCost CalibrateNodeTransition(sim::Simulator* simulator,
                                           hwsim::Cluster* cluster, NodeId n,
                                           SimDuration measure) {
  ECLDB_CHECK(simulator != nullptr && cluster != nullptr);
  ECLDB_CHECK(n >= 0 && n < cluster->num_nodes());
  ECLDB_CHECK_MSG(cluster->IsOn(n), "calibration needs the node on and idle");
  ECLDB_CHECK(measure > 0);
  const hwsim::NodePowerParams& power =
      cluster->params().nodes[static_cast<size_t>(n)].power;

  NodeTransitionCost cost;
  cost.boot_latency = power.boot_latency;
  cost.boot_energy_j = power.boot_power_w * ToSeconds(power.boot_latency);
  cost.off_power_w = power.off_power_w;

  const double e0 = cluster->NodeEnergyJoules(n);
  simulator->RunFor(measure);
  const double e1 = cluster->NodeEnergyJoules(n);
  cost.on_idle_power_w = (e1 - e0) / ToSeconds(measure);

  // Off for H then boot for B versus staying on idle throughout: the off
  // phase saves (on_idle - off) x H, the boot phase costs an extra
  // (boot - on_idle) x B. Break-even where they cancel.
  const double savings_rate_w = cost.on_idle_power_w - cost.off_power_w;
  const double boot_premium_j =
      (power.boot_power_w - cost.on_idle_power_w) * ToSeconds(cost.boot_latency);
  cost.break_even_off_s =
      savings_rate_w > 0.0 ? std::max(0.0, boot_premium_j / savings_rate_w)
                           : 0.0;
  return cost;
}

}  // namespace ecldb::ecl
