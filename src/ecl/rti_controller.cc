#include "ecl/rti_controller.h"

#include <algorithm>
#include <cmath>

namespace ecldb::ecl {

RtiController::Plan RtiController::MakePlan(
    double demand, int selected_index, const profile::EnergyProfile& profile,
    double pressure) const {
  Plan plan;
  plan.config_index = selected_index;
  if (!params_.enabled || selected_index < 0 ||
      pressure >= params_.disable_pressure) {
    return plan;
  }
  // RTI applies in the under-utilization zone: run the most
  // energy-efficient configuration and idle the rest of the time.
  if (profile.ZoneForDemand(demand) != profile::Zone::kUnderUtilization) {
    return plan;
  }
  const int optimal = profile.MostEfficientIndex();
  if (optimal < 0) return plan;
  const double optimal_perf = profile.config(optimal).perf_score;
  if (optimal_perf <= 0.0) return plan;

  const double duty = std::clamp(demand / optimal_perf, 0.0, 1.0);
  if (duty >= params_.max_duty) {
    plan.config_index = optimal;
    return plan;
  }
  plan.use_rti = true;
  plan.config_index = optimal;
  plan.duty = duty;
  // More cycles under pressure: shorter idle stints keep latencies low at
  // the cost of more transitions.
  const double pressure_scale = pressure / params_.disable_pressure;
  plan.cycles = static_cast<int>(std::lround(
      params_.min_cycles_per_interval +
      (params_.max_cycles_per_interval - params_.min_cycles_per_interval) *
          std::clamp(pressure_scale, 0.0, 1.0)));
  plan.cycles = std::clamp(plan.cycles, 1, params_.max_cycles_per_interval);
  return plan;
}

}  // namespace ecldb::ecl
