#ifndef ECLDB_ECL_SYSTEM_ECL_H_
#define ECLDB_ECL_SYSTEM_ECL_H_

#include <functional>

#include "common/types.h"
#include "engine/query.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct SystemEclParams {
  /// Monitoring interval of the system-level ECL.
  SimDuration interval = Millis(500);
  /// The user-defined query latency limit (soft constraint).
  double latency_limit_ms = 100.0;
  /// Estimated times-until-violation below this horizon raise pressure
  /// towards 1.
  double pressure_horizon_s = 3.0;
  /// Latency proximity (mean/limit) above which pressure starts rising
  /// even without a positive trend.
  double proximity_onset = 0.7;
  /// Floor on pressure contributed by the admission controller's recent
  /// shed fraction (pressure >= weight * shed_fraction). Shed queries are
  /// demand the latency window never sees: without this term, shedding
  /// that keeps latency healthy would read as "system relaxed" and let the
  /// ECL widen idling while the entrance is refusing work. Kept below the
  /// best-effort shed onset so the feedback loop converges (a fully-shed
  /// best-effort tier alone cannot re-trigger more shedding).
  double shed_pressure_weight = 0.4;
};

/// The system-level ECL (paper Section 5.2): monitors the average query
/// latency — the only globally meaningful metric — estimates its trend,
/// and derives the time until the user-defined latency limit would be
/// violated. This is distilled into a latency *pressure* in [0, 1] the
/// socket-level ECLs consume: it raises their discovery aggressiveness at
/// full utilization and curbs (ultimately disables) RTI idling.
class SystemEcl {
 public:
  SystemEcl(sim::Simulator* simulator, const engine::LatencyTracker* latency,
            const SystemEclParams& params);

  /// Starts periodic monitoring.
  void Start();
  void Stop() { running_ = false; }

  double pressure() const { return pressure_; }
  /// Estimated seconds until the latency limit is violated (infinity when
  /// the trend is flat or falling, 0 when already violated).
  double time_to_violation_s() const { return ttv_s_; }
  double latency_limit_ms() const { return params_.latency_limit_ms; }

  /// Recomputes pressure immediately (also called by the periodic tick).
  void Update();

  /// Reduced-demand feedback from admission control: a callable returning
  /// the recent shed fraction in [0, 1]. Unset (the default, and every
  /// non-loadgen experiment) leaves Update() exactly as before.
  void SetShedSignal(std::function<double()> signal) {
    shed_signal_ = std::move(signal);
  }

 private:
  void Tick(int64_t epoch);

  sim::Simulator* simulator_;
  const engine::LatencyTracker* latency_;
  SystemEclParams params_;
  std::function<double()> shed_signal_;
  bool running_ = false;
  /// Bumped on every Start so a Stop/Start cycle (node power-down and
  /// re-boot at cluster scope) cannot leave two tick chains running.
  int64_t start_epoch_ = 0;
  double pressure_ = 0.0;
  double ttv_s_ = 1e18;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_SYSTEM_ECL_H_
