#include "ecl/system_ecl.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::ecl {

SystemEcl::SystemEcl(sim::Simulator* simulator,
                     const engine::LatencyTracker* latency,
                     const SystemEclParams& params)
    : simulator_(simulator), latency_(latency), params_(params) {
  ECLDB_CHECK(simulator != nullptr && latency != nullptr);
  ECLDB_CHECK(params.latency_limit_ms > 0.0);
}

void SystemEcl::Start() {
  running_ = true;
  const int64_t epoch = ++start_epoch_;
  simulator_->ScheduleAfter(params_.interval, [this, epoch] { Tick(epoch); });
}

void SystemEcl::Tick(int64_t epoch) {
  if (!running_ || epoch != start_epoch_) return;
  Update();
  simulator_->ScheduleAfter(params_.interval, [this, epoch] { Tick(epoch); });
}

void SystemEcl::Update() {
  // Demand the entrance refused never shows up in the latency window, so
  // the shed fraction contributes a pressure floor in every branch.
  const double shed_floor =
      shed_signal_ ? std::clamp(params_.shed_pressure_weight * shed_signal_(),
                                0.0, 1.0)
                   : 0.0;
  if (latency_->WindowEmpty()) {
    pressure_ = shed_floor;
    ttv_s_ = 1e18;
    return;
  }
  const double mean = latency_->WindowMeanMs();
  const double trend = latency_->TrendMsPerSec();
  const double limit = params_.latency_limit_ms;

  if (mean >= limit) {
    ttv_s_ = 0.0;
    pressure_ = 1.0;
    return;
  }
  ttv_s_ = trend > 1e-9 ? (limit - mean) / trend : 1e18;

  const double trend_pressure =
      std::clamp(1.0 - ttv_s_ / params_.pressure_horizon_s, 0.0, 1.0);
  const double proximity = mean / limit;
  const double proximity_pressure = std::clamp(
      (proximity - params_.proximity_onset) / (1.0 - params_.proximity_onset),
      0.0, 1.0);
  pressure_ = std::max({trend_pressure, proximity_pressure, shed_floor});
}

}  // namespace ecldb::ecl
