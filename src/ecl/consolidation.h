#ifndef ECLDB_ECL_CONSOLIDATION_H_
#define ECLDB_ECL_CONSOLIDATION_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "ecl/system_ecl.h"
#include "engine/engine.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct ConsolidationParams {
  /// Master switch; default off so every existing experiment is
  /// byte-identical.
  bool enabled = false;
  /// Policy tick interval (system-level cadence).
  SimDuration interval = Seconds(1);
  /// Consolidate only while latency pressure is at or below this.
  double consolidate_pressure_max = 0.15;
  /// Spread partitions back as soon as pressure reaches this. Must sit
  /// above the pressure band of normal low-load operation (RTI batching
  /// alone produces window means of ~0.3-0.45x the limit) or the policy
  /// oscillates, yet far enough below 1.0 that capacity is restored
  /// before the limit is actually violated.
  double spread_pressure_min = 0.5;
  /// Projected relative load of the receiving socket (its load plus the
  /// donor's) must stay below this to consolidate.
  double target_load_ceiling = 0.6;
  /// Only sockets at or below this relative load donate partitions.
  double donor_load_max = 0.45;
  /// Migrations started per consolidation tick. Staged small on purpose:
  /// the receiver's reactive ECL re-sizes between batches, so absorbing
  /// the donor a few partitions at a time never spikes latency the way
  /// rehoming a whole socket at once does. (The donor's tail partitions
  /// are protected from the shrinking duty cycle by the backlog wake.)
  int migrations_per_tick = 4;
  /// Migrations started per spread tick. Spreading runs under latency
  /// pressure — the consolidated socket is overloaded until capacity is
  /// restored — so the whole rebalance batch ships at once; the shard
  /// copies are bandwidth-limited and complete within a few hundred ms.
  int spread_migrations_per_tick = 24;
  /// Anti-flapping dwell: after a migration completes, the policy holds
  /// off placement changes in the *opposite* direction for this long.
  /// A rehome batch is itself a disturbance (the receiver's ECL needs a
  /// few intervals of demand discovery to re-size), and reacting to that
  /// transient consolidates and spreads in a cycle. Continuing in the
  /// same direction is never dwell-gated — staged consolidation ships
  /// its next batch as soon as the previous one has landed.
  SimDuration post_migration_hold = Seconds(15);
  /// The hold does not gamble with the latency limit: at or above this
  /// pressure the policy spreads immediately regardless of dwell.
  double spread_pressure_hard = 0.9;
  /// Optional telemetry context: move/tick counters and instants for each
  /// consolidate/spread batch on an "ecl/consolidation" lane.
  telemetry::Telemetry* telemetry = nullptr;
};

/// System-level whole-socket consolidation (the placement policy of the
/// ECL hierarchy): when load is low — latency pressure far from the
/// limit and the least-loaded socket's work fits onto another socket —
/// it live-migrates partitions off that socket so the emptied socket can
/// be parked (idle configuration, package C-state, and with every socket
/// idle the uncore halt: the dominant per-socket fixed cost of paper
/// Figs. 3/5). When latency pressure approaches the limit it spreads
/// partitions back toward the initial placement before the limit is
/// violated.
///
/// Relative socket load is the socket ECL's processed performance level
/// over its profile's peak score — NOT worker utilization, which the
/// socket ECL intentionally keeps high by shrinking the active thread
/// set (utilization says "how busy are the awake workers", load says
/// "how much of the socket's capacity is spoken for").
class ConsolidationPolicy {
 public:
  /// `load` returns a socket's relative load in [0, 1].
  using LoadFn = std::function<double(SocketId)>;

  ConsolidationPolicy(sim::Simulator* simulator, engine::Engine* engine,
                      SystemEcl* system, LoadFn load,
                      const ConsolidationParams& params);

  void Start();
  void Stop() { running_ = false; }

  int64_t consolidation_moves() const { return consolidation_moves_; }
  int64_t spread_moves() const { return spread_moves_; }
  int64_t ticks() const { return ticks_; }

 private:
  void Tick();
  void Consolidate();
  void Spread();

  sim::Simulator* simulator_;
  engine::Engine* engine_;
  SystemEcl* system_;
  LoadFn load_;
  ConsolidationParams params_;

  bool running_ = false;
  int64_t ticks_ = 0;
  int64_t consolidation_moves_ = 0;
  int64_t spread_moves_ = 0;
  int trace_lane_ = 0;  // "ecl/consolidation" lane when telemetry is attached
  /// Dwell-timer state: completed-migration count last observed, when it
  /// last changed, and which direction the last placement change moved in
  /// (the dwell only gates reversals).
  enum class Direction { kNone, kConsolidate, kSpread };
  int64_t last_completed_seen_ = 0;
  SimTime last_migration_time_ = -1;
  Direction last_direction_ = Direction::kNone;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_CONSOLIDATION_H_
