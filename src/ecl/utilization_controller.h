#ifndef ECLDB_ECL_UTILIZATION_CONTROLLER_H_
#define ECLDB_ECL_UTILIZATION_CONTROLLER_H_

#include "profile/energy_profile.h"

namespace ecldb::ecl {

struct UtilizationControllerParams {
  /// Utilization at or above which the controller considers the socket
  /// fully utilized (the true demand is then unobservable).
  double full_threshold = 0.95;
  /// Base factor of the exponential discovery strategy at full
  /// utilization.
  double discovery_factor = 2.0;
  /// Additional aggressiveness at maximum latency pressure: the factor
  /// grows to discovery_factor * (1 + pressure_boost * pressure).
  double pressure_boost = 3.0;
  /// Headroom multiplied onto the observed demand so transient bursts do
  /// not immediately build backlog.
  double headroom = 1.25;
  /// Largest per-tick reduction of the performance level (0.5 = at most
  /// halve), damping down-up oscillation of the reactive loop.
  double max_decrease = 0.5;
};

/// The paper's utilization controller (Section 5.1): determines the
/// current performance-level demand of the DBMS on this socket.
///
/// Below full utilization the demand is directly observable:
///   performance_level_new = utilization * performance_level_old  (Eq. 3)
///
/// At full utilization the controller cannot know the true demand (the
/// utilization is measured relative to the active workers), so it
/// discovers it by exponentially increasing the performance level —
/// faster when the system-level ECL reports latency pressure.
class UtilizationController {
 public:
  explicit UtilizationController(const UtilizationControllerParams& params)
      : params_(params) {}

  /// Computes the new performance-level demand.
  ///
  /// `utilization` in [0,1] is the worker-busy fraction (saturation
  /// signal); `measured_rate` is the performance level actually processed
  /// over the finished interval (instructions retired per second), which
  /// below saturation equals the true demand — this is Eq. 3 expressed in
  /// the measured currency (utilization * offered level == processed
  /// level). `current_level` is the previously offered level; `pressure`
  /// in [0,1] comes from the system-level ECL.
  double Update(double utilization, double measured_rate, double current_level,
                double pressure, const profile::EnergyProfile& profile) const;

  const UtilizationControllerParams& params() const { return params_; }

 private:
  UtilizationControllerParams params_;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_UTILIZATION_CONTROLLER_H_
