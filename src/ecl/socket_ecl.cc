#include "ecl/socket_ecl.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/check.h"

namespace ecldb::ecl {

SocketEcl::SocketEcl(sim::Simulator* simulator, hwsim::Machine* machine,
                     SocketId socket, profile::EnergyProfile profile,
                     SystemEcl* system, std::function<double()> util_source,
                     const SocketEclParams& params)
    : simulator_(simulator),
      machine_(machine),
      socket_(socket),
      profile_(std::move(profile)),
      system_(system),
      util_source_(std::move(util_source)),
      params_(params),
      util_controller_(params.utilization),
      rti_controller_(params.rti),
      maintenance_(params.maintenance) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
  ECLDB_CHECK(util_source_ != nullptr);
  if (params_.predictor.enabled) {
    predictor_ =
        std::make_unique<ProfilePredictor>(profile_.size(), params_.predictor);
    // Every profile measurement — online, multiplexed, or warm-start
    // deserialization — trains the learn-cache, tagged with the feature
    // snapshot of the last loaded interval.
    profile_.SetRecordHook([this](int index, double power_w, double perf_score,
                                  SimTime at) {
      if (!record_hook_muted_ && last_features_.valid) {
        predictor_->Observe(index, last_features_, power_w, perf_score, at);
      }
    });
  }
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    const std::string base = "ecl/socket" + std::to_string(socket_) + "/";
    reg.AddGauge(base + "utilization", [this] { return last_utilization_; });
    reg.AddGauge(base + "perf_level", [this] { return perf_level_; });
    reg.AddGauge(base + "measured_rate", [this] { return last_measured_rate_; });
    // The profile's peak drifts with online adaptation, so consumers that
    // want a relative performance level need the contemporaneous peak.
    reg.AddGauge(base + "peak_perf", [this] { return profile_.PeakPerfScore(); });
    reg.AddGauge(base + "config_index",
                 [this] { return static_cast<double>(current_index_); });
    reg.AddGauge(base + "rti_duty", [this] {
      return last_plan_.use_rti ? last_plan_.duty : 1.0;
    });
    reg.AddGauge(base + "rti_cycles", [this] {
      return last_plan_.use_rti ? static_cast<double>(last_plan_.cycles) : 0.0;
    });
    reg.AddGauge(base + "parked", [this] { return parked_ ? 1.0 : 0.0; });
    reg.AddCounterFn(base + "ticks", [this] { return ticks_; });
    reg.AddCounterFn(base + "multiplexed_evals",
                     [this] { return maintenance_.multiplexed_evals(); });
    if (params_.predictor.enabled) {
      // Registered only with the predictor on so that every pre-existing
      // telemetry artifact stays byte-identical in the default setup.
      reg.AddCounterFn(base + "predictor_hits",
                       [this] { return maintenance_.predictor_hits(); });
      reg.AddCounterFn(base + "predictor_misses",
                       [this] { return maintenance_.predictor_misses(); });
      reg.AddCounterFn(base + "predictor_seeded_configs", [this] {
        return maintenance_.predictor_seeded_configs();
      });
      reg.AddCounterFn(base + "predictor_measurements_skipped", [this] {
        return maintenance_.predictor_measurements_skipped();
      });
      reg.AddGauge(base + "ignorance",
                   [this] { return maintenance_.last_mean_ignorance(); });
    }
    trace_lane_ =
        tel->trace().RegisterLane("ecl/socket" + std::to_string(socket_));
  }
}

void SocketEcl::Start() {
  running_ = true;
  simulator_->ScheduleAfter(Nanos(1), [this] { Tick(); });
}

void SocketEcl::Stop() {
  running_ = false;
  ++generation_;
}

uint64_t SocketEcl::ReadSocketEnergyUj() const {
  return machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kPackage) +
         machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kDram);
}

void SocketEcl::HandleDrift(SimTime now) {
  maintenance_.FlagDrift(&profile_);
  if (params_.telemetry != nullptr) {
    params_.telemetry->trace().Instant(trace_lane_, "ecl", "drift_detected",
                                       now);
  }
  // Seeding is deferred one interval: the interval that *detected* the
  // drift straddles the workload switch, so its feature snapshot is a
  // mixture of the old and the new workload and matches neither cached
  // cluster. The next interval ran purely post-switch.
  if (predictor_ != nullptr) pending_seed_ = true;
}

void SocketEcl::RunPendingSeed(SimTime now) {
  pending_seed_ = false;
  record_hook_muted_ = true;
  const ProfileMaintenance::SeedOutcome out = maintenance_.SeedFromPredictions(
      &profile_, *predictor_, last_features_,
      params_.predictor.ignorance_threshold, now);
  record_hook_muted_ = false;
  if (params_.telemetry != nullptr && (out.seeded > 0 || out.left_stale > 0)) {
    params_.telemetry->trace().Instant(
        trace_lane_, "ecl", "profile_seeded", now,
        "\"seeded\":" + std::to_string(out.seeded) +
            ",\"stale\":" + std::to_string(out.left_stale) +
            ",\"ignorance\":" + telemetry::JsonNumber(out.mean_ignorance));
  }
}

void SocketEcl::ApplyConfig(int index) {
  ECLDB_DCHECK(index >= 0 && index < profile_.size());
  machine_->ApplySocketConfig(socket_, profile_.config(index).hw);
}

void SocketEcl::ApplyIdle() { ApplyConfig(profile_.idle_index()); }

void SocketEcl::ScheduleEvaluation(SimTime at, int index, int64_t gen) {
  simulator_->Schedule(at, [this, index, gen] {
    if (gen != generation_) return;
    ApplyConfig(index);
  });
  // Shared measurement state per evaluation, captured by both events.
  auto e0 = std::make_shared<uint64_t>(0);
  auto i0 = std::make_shared<uint64_t>(0);
  simulator_->Schedule(at + params_.apply_settle, [this, e0, i0, gen] {
    if (gen != generation_) return;
    *e0 = ReadSocketEnergyUj();
    *i0 = machine_->ReadSocketInstructions(socket_);
  });
  simulator_->Schedule(
      at + params_.apply_settle + params_.measure_time,
      [this, e0, i0, index, gen] {
        if (gen != generation_) return;
        const double seconds = ToSeconds(params_.measure_time);
        const double power = static_cast<double>(static_cast<int64_t>(
                                 ReadSocketEnergyUj() - *e0)) *
                             1e-6 / seconds;
        const double perf =
            static_cast<double>(machine_->ReadSocketInstructions(socket_) - *i0) /
            seconds;
        // Frozen RAPL counters (sensor dropout) yield a non-positive power
        // delta; real socket power is tens of watts. Discard instead of
        // recording a "free energy" configuration the skyline would pin to.
        if (power <= 0.0) {
          maintenance_.CountDiscardedMeasurement();
          return;
        }
        profile_.Record(index, power, perf, simulator_->now());
        maintenance_.CountMultiplexedEval();
      });
}

void SocketEcl::ScheduleRti(SimTime from, SimTime until,
                            const RtiController::Plan& plan, int64_t gen) {
  const SimDuration span = until - from;
  if (span <= 0 || plan.cycles < 1) return;
  const SimDuration period = span / plan.cycles;
  for (int c = 0; c < plan.cycles; ++c) {
    const SimTime cycle_start = from + c * period;
    const SimTime idle_start =
        cycle_start + static_cast<SimDuration>(plan.duty * period);
    // Active-phase start: apply the configuration (the very first cycle is
    // already applied by Tick) and snapshot the counters.
    simulator_->Schedule(cycle_start, [this, plan, gen, cycle_start, from] {
      if (gen != generation_) return;
      if (cycle_start > from) ApplyConfig(plan.config_index);
      rti_phase_e0_uj_ = ReadSocketEnergyUj();
      rti_phase_i0_ = machine_->ReadSocketInstructions(socket_);
      rti_phase_t0_ = simulator_->now();
    });
    // Active-phase end: accumulate the phase into the interval's online
    // measurement and enter idle mode.
    if (idle_start < cycle_start + period) {
      simulator_->Schedule(idle_start, [this, gen] {
        if (gen != generation_) return;
        rti_active_energy_uj_ += static_cast<double>(static_cast<int64_t>(
            ReadSocketEnergyUj() - rti_phase_e0_uj_));
        rti_active_instr_ += static_cast<double>(
            machine_->ReadSocketInstructions(socket_) - rti_phase_i0_);
        rti_active_time_ += simulator_->now() - rti_phase_t0_;
        ApplyIdle();
      });
    }
  }
}

void SocketEcl::Tick() {
  if (!running_) return;
  const SimTime now = simulator_->now();
  ++ticks_;
  ++generation_;
  const int64_t gen = generation_;

  if (park_check_ && park_check_()) {
    // Parked: no partitions are homed here. Hold the idle configuration
    // (applied once, so long stretches stay stationary for fast-forward)
    // and skip measurement, control and adaptation entirely; the bumped
    // generation cancels any pending RTI/evaluation events.
    (void)util_source_();  // keep the utilization window consumed
    if (!parked_) ApplyIdle();
    parked_ = true;
    perf_level_ = 0.0;
    last_utilization_ = 0.0;
    current_index_ = profile_.idle_index();
    last_plan_ = RtiController::Plan{};
    interval_clean_ = false;
    interval_config_ = -1;
    rti_active_energy_uj_ = 0.0;
    rti_active_instr_ = 0.0;
    rti_active_time_ = 0;
    interval_t0_ = now;
    interval_e0_uj_ = ReadSocketEnergyUj();
    interval_i0_ = machine_->ReadSocketInstructions(socket_);
    interval_poll0_ = machine_->ReadSocketPolledInstructions(socket_);
    interval_bytes0_ = machine_->ReadSocketDramBytes(socket_);
    if (params_.telemetry != nullptr) {
      params_.telemetry->trace().Instant(trace_lane_, "ecl", "parked", now);
    }
    simulator_->Schedule(now + params_.interval, [this] { Tick(); });
    return;
  }
  parked_ = false;

  // ---- Utilization of the finished interval -------------------------------
  const double utilization = util_source_();
  last_utilization_ = utilization;
  // Performance level actually processed over the finished interval,
  // measured in the profile's currency (instructions retired / second).
  double measured_rate = 0.0;
  if (now > interval_t0_) {
    uint64_t instr_delta =
        machine_->ReadSocketInstructions(socket_) - interval_i0_;
    if (params_.exclude_poll_instructions) {
      // Discount the idle-spin instructions of workless active threads:
      // they retire at full rate while representing zero processed work,
      // so counting them inflates the demand estimate of a mostly-idle
      // (e.g. freshly consolidated) socket.
      const uint64_t poll_delta =
          machine_->ReadSocketPolledInstructions(socket_) - interval_poll0_;
      instr_delta -= std::min(instr_delta, poll_delta);
    }
    measured_rate = static_cast<double>(instr_delta) /
                    ToSeconds(now - interval_t0_);
  }
  last_measured_rate_ = measured_rate;

  // ---- Work-profile feature snapshot (learned adaptation) ---------------
  // Describes what ran over the finished interval in configuration-
  // invariant terms; tags every learn-cache observation and keys the
  // predictions that seed the profile on drift. Idle intervals keep the
  // previous (last loaded) snapshot.
  if (predictor_ != nullptr && now > interval_t0_ && interval_config_ > 0) {
    const double seconds = ToSeconds(now - interval_t0_);
    profile::FeatureInputs fin;
    fin.instr_rate =
        static_cast<double>(machine_->ReadSocketInstructions(socket_) -
                            interval_i0_) /
        seconds;
    fin.dram_bytes_rate =
        (machine_->ReadSocketDramBytes(socket_) - interval_bytes0_) / seconds;
    const hwsim::SocketConfig& hw = profile_.config(interval_config_).hw;
    fin.active_threads = hw.ActiveThreadCount();
    fin.core_freq_ghz = hw.MeanActiveCoreFreq(machine_->topology());
    fin.rti_duty = last_plan_.use_rti ? last_plan_.duty : 1.0;
    fin.utilization = utilization;
    const profile::FeatureVector features = profile::ExtractFeatures(fin);
    if (features.valid && features.v[2] >= params_.predictor.min_utilization) {
      last_features_ = features;
    }
  }
  // Deferred drift seeding (see HandleDrift): runs with the first clean
  // post-switch snapshot, before this interval's online measurement is
  // checked against the stored values — a successful seed therefore
  // already agrees with what the measurement is compared to.
  if (pending_seed_ && predictor_ != nullptr) RunPendingSeed(now);

  // ---- Online adaptation: measure the finished interval -----------------
  // Intervals where the configuration ran uninterrupted and was
  // meaningfully loaded are recorded as-is (the paper's online strategy:
  // "every time the socket-level ECL applies a certain configuration, it
  // measures the power and performance metrics"). Below saturation the
  // performance score understates the configuration's capacity, which is
  // conservative: it demotes stale entries and escalates under load.
  if (interval_clean_ && utilization >= 0.75 && interval_config_ > 0 &&
      now > interval_t0_) {
    const double seconds = ToSeconds(now - interval_t0_);
    if (seconds >= ToSeconds(params_.measure_time)) {
      const double power = static_cast<double>(static_cast<int64_t>(
                               ReadSocketEnergyUj() - interval_e0_uj_)) *
                           1e-6 / seconds;
      const double perf = static_cast<double>(
                              machine_->ReadSocketInstructions(socket_) -
                              interval_i0_) /
                          seconds;
      const ProfileMaintenance::OnlineOutcome outcome = maintenance_.RecordOnline(
          &profile_, interval_config_, power, perf, now);
      if (outcome.drift_detected) HandleDrift(now);
    }
  }
  // RTI intervals: the active phases concentrate the queued work, so their
  // accumulated counters measure the applied configuration under
  // (near-)full load — the "simulated high load" of Section 5.1.
  if (last_plan_.use_rti && interval_config_ > 0 && utilization >= 0.75 &&
      rti_active_time_ >= params_.measure_time) {
    const double active_s = ToSeconds(rti_active_time_);
    const ProfileMaintenance::OnlineOutcome outcome = maintenance_.RecordOnline(
        &profile_, interval_config_, rti_active_energy_uj_ * 1e-6 / active_s,
        rti_active_instr_ / active_s, now);
    if (outcome.drift_detected) HandleDrift(now);
  }
  rti_active_energy_uj_ = 0.0;
  rti_active_instr_ = 0.0;
  rti_active_time_ = 0;

  // ---- Utilization controller -------------------------------------------
  const double pressure = system_ != nullptr ? system_->pressure() : 0.0;

  // Backlog wake (dynamic placement only): utilization and the measured
  // rate are relative to the *running* workers, so on a nearly-drained
  // socket whose RTI duty has decayed, queued work is invisible to the
  // reactive loop — stale routed arrivals or a migration shard copy can
  // pile up behind sub-slice active windows while demand keeps halving
  // (the decay branch), a feedback deadlock. Saturation test in the
  // profile's currency: if the backlog could not be drained within about
  // one control interval at the currently offered level (factor 2 covers
  // the ops-vs-instructions currency gap), the true demand strictly
  // exceeds the offer regardless of what utilization reads.
  double control_utilization = utilization;
  bool backlog_wake = false;
  if (backlog_check_ &&
      backlog_check_() >
          2.0 * perf_level_ * ToSeconds(params_.interval)) {
    control_utilization = 1.0;
    backlog_wake = true;
  }

  double demand = 0.0;
  int selected;
  const bool bootstrap = profile_.measured_count() == 0;
  if (bootstrap) {
    // Bootstrap: nothing measured yet. Run the widest configuration (all
    // threads at maximum frequency) while multiplexed adaptation fills the
    // profile.
    selected = profile_.size() - 1;
    double best = -1.0;
    for (int i = 1; i < profile_.size(); ++i) {
      const hwsim::SocketConfig& hw = profile_.config(i).hw;
      const double score = hw.ActiveThreadCount() * 1000.0 +
                           hw.MeanActiveCoreFreq(machine_->topology());
      if (score > best) {
        best = score;
        selected = i;
      }
    }
  } else {
    demand = util_controller_.Update(control_utilization, measured_rate,
                                     perf_level_, pressure, profile_);
    if (backlog_wake) {
      // Race-to-idle at socket scale: the backlog accrued with zero
      // service, so exponential discovery from the decayed level would
      // take many intervals. Drain at peak and let the next ticks decay
      // back (or park, once the last partitions migrate away).
      demand = profile_.PeakPerfScore();
    }
    selected = profile_.FindForDemand(demand);
    if (selected < 0) selected = profile_.size() - 1;
  }

  // ---- RTI controller -----------------------------------------------------
  RtiController::Plan plan =
      rti_controller_.MakePlan(demand, selected, profile_, pressure);
  last_plan_ = plan;
  current_index_ = plan.config_index;
  // The performance level tracks the *offered* capacity of the plan, so
  // that Eq. 3 (new = utilization * old) recovers the true demand: with
  // RTI the offered capacity is scaled by the duty cycle.
  const profile::Configuration& chosen = profile_.config(plan.config_index);
  const double offered = chosen.measured() ? chosen.perf_score : demand;
  perf_level_ = plan.use_rti ? plan.duty * offered : offered;
  if (perf_level_ <= 0.0) perf_level_ = demand;

  // ---- Multiplexed adaptation ---------------------------------------------
  std::vector<int> evals = maintenance_.PickForReevaluation(profile_, now);
  const SimDuration eval_each = params_.apply_settle + params_.measure_time;
  const SimDuration eval_budget = static_cast<SimDuration>(
      params_.max_eval_fraction * static_cast<double>(params_.interval));
  while (!evals.empty() &&
         static_cast<SimDuration>(evals.size()) * eval_each > eval_budget) {
    evals.pop_back();
  }
  SimTime cursor = now;
  for (int idx : evals) {
    ScheduleEvaluation(cursor, idx, gen);
    cursor += eval_each;
  }

  // ---- Apply the plan for the rest of the interval ------------------------
  const SimTime interval_end = now + params_.interval;
  if (plan.use_rti) {
    if (cursor == now) {
      ApplyConfig(plan.config_index);
    } else {
      simulator_->Schedule(cursor, [this, plan, gen] {
        if (gen != generation_) return;
        ApplyConfig(plan.config_index);
      });
    }
    ScheduleRti(cursor, interval_end, plan, gen);
  } else {
    if (cursor == now) {
      ApplyConfig(plan.config_index);
    } else {
      simulator_->Schedule(cursor, [this, plan, gen] {
        if (gen != generation_) return;
        ApplyConfig(plan.config_index);
      });
    }
  }

  // ---- Arm online measurement for this interval ---------------------------
  interval_clean_ = evals.empty() && !plan.use_rti && plan.config_index > 0;
  interval_config_ = plan.config_index;
  interval_t0_ = now;
  interval_e0_uj_ = ReadSocketEnergyUj();
  interval_i0_ = machine_->ReadSocketInstructions(socket_);
  interval_poll0_ = machine_->ReadSocketPolledInstructions(socket_);
  interval_bytes0_ = machine_->ReadSocketDramBytes(socket_);

  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    // One span per control interval carrying the decision and its reason.
    const char* reason =
        bootstrap ? "bootstrap" : (backlog_wake ? "backlog_wake" : "normal");
    tel->trace().Span(
        trace_lane_, "ecl", "tick", now, interval_end,
        std::string("\"reason\":\"") + reason +
            "\",\"config\":" + std::to_string(plan.config_index) +
            ",\"rti\":" + (plan.use_rti ? "true" : "false") +
            ",\"duty\":" + telemetry::JsonNumber(plan.duty) +
            ",\"cycles\":" + std::to_string(plan.cycles) +
            ",\"utilization\":" + telemetry::JsonNumber(utilization) +
            ",\"demand\":" + telemetry::JsonNumber(demand) +
            ",\"perf_level\":" + telemetry::JsonNumber(perf_level_) +
            ",\"evals\":" + std::to_string(evals.size()));
  }

  simulator_->Schedule(interval_end, [this] { Tick(); });
}

}  // namespace ecldb::ecl
