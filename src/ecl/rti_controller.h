#ifndef ECLDB_ECL_RTI_CONTROLLER_H_
#define ECLDB_ECL_RTI_CONTROLLER_H_

#include "common/types.h"
#include "profile/energy_profile.h"

namespace ecldb::ecl {

struct RtiControllerParams {
  bool enabled = true;
  /// Maximum RTI cycles per socket-level ECL interval (the paper uses up
  /// to 50 cycles per 1 s interval).
  int max_cycles_per_interval = 50;
  /// Minimum cycles when RTI is active.
  int min_cycles_per_interval = 10;
  /// Above this duty there is no point in switching (residency in idle
  /// would be negligible).
  double max_duty = 0.95;
  /// Latency pressure at or above which RTI is disabled entirely (idle
  /// residency hurts response times).
  double disable_pressure = 0.7;
};

/// The paper's race-to-idle controller (Section 5.1): in the
/// under-utilization zone the socket switches between the most
/// energy-efficient configuration and idle mode, which (1) partially
/// compensates the high cost of activating the first core of a socket and
/// (2) emulates any performance level the profile has no configuration
/// for. Higher latency pressure raises the switching frequency (shorter
/// idle stints) and eventually disables RTI.
class RtiController {
 public:
  struct Plan {
    /// Whether to switch between `config_index` and idle at all; when
    /// false, `config_index` is applied for the entire interval.
    bool use_rti = false;
    /// Configuration to run during active phases.
    int config_index = -1;
    /// Fraction of each cycle spent in the active configuration.
    double duty = 1.0;
    /// Number of cycles in the upcoming ECL interval.
    int cycles = 1;
  };

  explicit RtiController(const RtiControllerParams& params) : params_(params) {}

  /// Plans the next interval for a demanded performance level.
  /// `selected_index` is the utilization controller's configuration pick.
  Plan MakePlan(double demand, int selected_index,
                const profile::EnergyProfile& profile, double pressure) const;

  const RtiControllerParams& params() const { return params_; }

 private:
  RtiControllerParams params_;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_RTI_CONTROLLER_H_
