#include "ecl/os_governor.h"

#include <algorithm>

#include "common/check.h"
#include "hwsim/firmware.h"

namespace ecldb::ecl {

OsGovernor::OsGovernor(sim::Simulator* simulator, engine::Engine* engine,
                       const OsGovernorParams& params)
    : simulator_(simulator), engine_(engine), params_(params) {
  ECLDB_CHECK(simulator != nullptr && engine != nullptr);
}

void OsGovernor::Apply(double freq_ghz) {
  hwsim::Machine& machine = engine_->machine();
  if (freq_ghz == freq_ghz_) return;
  freq_ghz_ = freq_ghz;
  for (SocketId s = 0; s < machine.topology().num_sockets; ++s) {
    machine.ApplySocketConfig(
        s, hwsim::SocketConfig::AllOn(machine.topology(), freq_ghz,
                                      machine.freqs().max_uncore()));
  }
}

void OsGovernor::Start() {
  running_ = true;
  hwsim::Machine& machine = engine_->machine();
  machine.SetEpb(hwsim::EpbSetting::kBalanced);
  for (SocketId s = 0; s < machine.topology().num_sockets; ++s) {
    machine.SetUncoreMode(s, hwsim::UncoreMode::kAuto);
  }
  Apply(machine.freqs().max_core());
  simulator_->ScheduleAfter(params_.interval, [this] { Tick(); });
}

void OsGovernor::Tick() {
  if (!running_) return;
  hwsim::Machine& machine = engine_->machine();
  // What the OS can see: C0 residency. With a polling message layer every
  // worker spins when there is no work, so the thread never leaves C0.
  double util = 1.0;
  if (!params_.sees_polling_as_busy) {
    double sum = 0.0;
    for (SocketId s = 0; s < machine.topology().num_sockets; ++s) {
      sum += engine_->TakeSocketUtilization(s);
    }
    util = sum / machine.topology().num_sockets;
  }
  last_util_ = util;

  const hwsim::FrequencyTable& freqs = machine.freqs();
  double target;
  if (util >= params_.up_threshold) {
    target = freqs.max_core();  // ondemand: jump straight to the maximum
  } else {
    target = std::max(freqs.min_core(),
                      freqs.max_core_nominal() * util / params_.up_threshold);
  }
  Apply(freqs.NearestCore(target));
  simulator_->ScheduleAfter(params_.interval, [this] { Tick(); });
}

}  // namespace ecldb::ecl
