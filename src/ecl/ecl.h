#ifndef ECLDB_ECL_ECL_H_
#define ECLDB_ECL_ECL_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "ecl/consolidation.h"
#include "ecl/socket_ecl.h"
#include "ecl/system_ecl.h"
#include "engine/engine.h"
#include "profile/config_generator.h"
#include "sim/simulator.h"

namespace ecldb::ecl {

struct EclParams {
  SocketEclParams socket;
  SystemEclParams system;
  profile::GeneratorParams generator;
  /// Pin the EPB to performance mode when doing explicit energy control
  /// (the conclusion of the paper's Section 2.3).
  bool set_epb_performance = true;
  /// Whole-socket consolidation through live partition migration
  /// (disabled by default; see ConsolidationPolicy).
  ConsolidationParams consolidation;
  /// Wire the socket park/backlog hooks without enabling in-box
  /// consolidation. The cluster tier sets this: it moves partitions
  /// across nodes itself, but still wants each node's sockets to wake on
  /// local backlog.
  bool placement_hooks = false;
  /// Optional telemetry context, propagated into the socket ECLs and the
  /// consolidation policy (overrides their individual params fields when
  /// set); also registers the system-level latency-pressure gauge.
  telemetry::Telemetry* telemetry = nullptr;
};

/// The hierarchical Energy-Control Loop (paper Section 5): one socket-level
/// ECL per processor, each with its own adaptively-maintained energy
/// profile, plus a single system-level ECL monitoring query latency against
/// the user-defined limit.
class EnergyControlLoop {
 public:
  EnergyControlLoop(sim::Simulator* simulator, engine::Engine* engine,
                    const EclParams& params);

  /// Starts the system-level ECL and all socket-level ECLs.
  void Start();
  void Stop();

  SystemEcl& system() { return *system_; }
  SocketEcl& socket(SocketId s) { return *sockets_[static_cast<size_t>(s)]; }
  int num_sockets() const { return static_cast<int>(sockets_.size()); }
  /// Non-null iff consolidation was enabled in the params.
  ConsolidationPolicy* consolidation() { return consolidation_.get(); }

  /// Flags a workload change on every socket (normally drift detection
  /// does this automatically; exposed for experiments).
  void FlagWorkloadChange();

  /// Toggles profile maintenance on every socket (Fig. 15/16 experiment
  /// arms: static / online / multiplexed).
  void SetAdaptation(bool online, bool multiplexed);

 private:
  sim::Simulator* simulator_;
  engine::Engine* engine_;
  EclParams params_;
  std::unique_ptr<SystemEcl> system_;
  std::vector<std::unique_ptr<SocketEcl>> sockets_;
  std::unique_ptr<ConsolidationPolicy> consolidation_;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_ECL_H_
