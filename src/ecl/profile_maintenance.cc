#include "ecl/profile_maintenance.h"

#include <algorithm>
#include <cmath>

namespace ecldb::ecl {

ProfileMaintenance::OnlineOutcome ProfileMaintenance::RecordOnline(
    profile::EnergyProfile* profile, int index, double power_w,
    double perf_score, SimTime now) {
  OnlineOutcome outcome;
  if (!params_.enable_online || index <= 0 || index >= profile->size()) {
    return outcome;
  }
  // Sensor sanity: a RAPL dropout freezes the published energy counters,
  // collapsing the interval's power delta to zero (or, with quantization
  // jitter, below zero). Real socket power is tens of watts, so a
  // non-positive measurement can only be a broken sensor — discard it
  // instead of poisoning the profile with a "free energy" configuration.
  if (power_w <= 0.0) {
    ++discarded_measurements_;
    return outcome;
  }
  profile::Configuration& c = profile->config(index);
  if (c.measured() && c.power_w > 0.0 && c.perf_score > 0.0 &&
      perf_score > 0.0) {
    const double power_dev = std::abs(power_w - c.power_w) / c.power_w;
    const double perf_dev = std::abs(perf_score - c.perf_score) / c.perf_score;
    if (std::max(power_dev, perf_dev) > params_.drift_threshold) {
      outcome.drift_detected = true;
    }
  }
  profile->Record(index, power_w, perf_score, now);
  ++online_updates_;
  outcome.recorded = true;
  return outcome;
}

ProfileMaintenance::SeedOutcome ProfileMaintenance::SeedFromPredictions(
    profile::EnergyProfile* profile, const ProfilePredictor& predictor,
    const profile::FeatureVector& features, double threshold, SimTime now) {
  SeedOutcome outcome;
  if (!features.valid) return outcome;
  double ignorance_sum = 0.0;
  for (int i = 1; i < profile->size(); ++i) {
    const ProfilePredictor::Prediction p = predictor.Predict(i, features);
    ignorance_sum += p.ignorance;
    if (p.ignorance <= threshold && p.perf_score > 0.0) {
      const bool was_stale = profile->config(i).force_stale;
      profile->Record(i, p.power_w, p.perf_score, now);
      ++predictor_hits_;
      ++predictor_seeded_;
      if (was_stale) ++predictor_skipped_;
      ++outcome.seeded;
    } else {
      ++predictor_misses_;
      ++outcome.left_stale;
    }
  }
  const int n = profile->size() - 1;
  outcome.mean_ignorance =
      n > 0 ? ignorance_sum / static_cast<double>(n) : 1.0;
  last_mean_ignorance_ = outcome.mean_ignorance;
  return outcome;
}

std::vector<int> ProfileMaintenance::PickForReevaluation(
    const profile::EnergyProfile& profile, SimTime now) {
  std::vector<int> picks;
  if (!params_.enable_multiplexed) return picks;
  const std::vector<int> stale = profile.StaleConfigs(now, params_.stale_age);
  if (stale.empty()) {
    reeval_cursor_ = 0;
    return picks;
  }
  // Round-robin through the stale set so repeated calls make progress even
  // if earlier entries stay stale (e.g. evaluation was preempted).
  for (int i = 0; i < params_.evals_per_interval &&
                  i < static_cast<int>(stale.size());
       ++i) {
    picks.push_back(stale[(reeval_cursor_ + static_cast<size_t>(i)) % stale.size()]);
  }
  reeval_cursor_ = (reeval_cursor_ + picks.size()) % std::max<size_t>(1, stale.size());
  return picks;
}

}  // namespace ecldb::ecl
