#ifndef ECLDB_ECL_PROFILE_MAINTENANCE_H_
#define ECLDB_ECL_PROFILE_MAINTENANCE_H_

#include <vector>

#include "common/types.h"
#include "ecl/profile_predictor.h"
#include "profile/energy_profile.h"
#include "profile/feature_vector.h"

namespace ecldb::ecl {

struct ProfileMaintenanceParams {
  bool enable_online = true;
  bool enable_multiplexed = true;
  /// Relative deviation between a fresh online measurement and the stored
  /// configuration data that indicates a workload change (drift) and
  /// triggers multiplexed reevaluation of the whole profile.
  double drift_threshold = 0.20;
  /// Measurements older than this are considered stale.
  SimDuration stale_age = Seconds(120);
  /// Stale configurations reevaluated per ECL interval while multiplexed
  /// adaptation is active.
  int evals_per_interval = 6;
};

/// Maintains the energy profile at runtime (paper Section 5.1):
///
///  * Online adaptation: every interval the applied configuration ran
///    un-interrupted, its measured power/performance replaces the stored
///    values — free of overhead but only covers applied configurations.
///  * Multiplexed adaptation: when a high drift is detected (or entries
///    are stale), stale configurations are reevaluated in small batches,
///    borrowing the interval time the RTI controller would have idled.
class ProfileMaintenance {
 public:
  explicit ProfileMaintenance(const ProfileMaintenanceParams& params)
      : params_(params) {}

  struct OnlineOutcome {
    bool recorded = false;
    bool drift_detected = false;
  };

  /// Feeds an online measurement of configuration `index` (measured over a
  /// full interval with no RTI idling). Detects drift against the stored
  /// values before replacing them.
  OnlineOutcome RecordOnline(profile::EnergyProfile* profile, int index,
                             double power_w, double perf_score, SimTime now);

  /// Configurations to reevaluate in the upcoming interval (empty when
  /// multiplexed adaptation is off or nothing is stale).
  std::vector<int> PickForReevaluation(const profile::EnergyProfile& profile,
                                       SimTime now);

  /// Declares a workload change: flags the whole profile for multiplexed
  /// reevaluation.
  void FlagDrift(profile::EnergyProfile* profile) {
    profile->InvalidateAll();
    ++drift_flags_;
  }

  /// Number of drift events flagged (experiments use deltas of this to
  /// attribute adaptation work to a workload switch).
  int64_t drift_flags() const { return drift_flags_; }

  struct SeedOutcome {
    /// Configurations recorded from predictions (now fresh again).
    int seeded = 0;
    /// Configurations whose ignorance exceeded the threshold; they stay
    /// stale and the multiplexed evaluator measures them for real.
    int left_stale = 0;
    double mean_ignorance = 1.0;
  };

  /// Learned adaptation (ROADMAP item 3): after FlagDrift invalidated the
  /// profile, seeds every configuration whose prediction for `features`
  /// has ignorance <= `threshold` — a recurring work profile then
  /// re-converges after the handful of high-ignorance measurements
  /// instead of a full ~|profile| multiplexed sweep. The skyline /
  /// FindForDemand / zone logic runs unchanged on the seeded values.
  SeedOutcome SeedFromPredictions(profile::EnergyProfile* profile,
                                  const ProfilePredictor& predictor,
                                  const profile::FeatureVector& features,
                                  double threshold, SimTime now);

  int64_t online_updates() const { return online_updates_; }
  int64_t multiplexed_evals() const { return multiplexed_evals_; }
  void CountMultiplexedEval() { ++multiplexed_evals_; }
  /// Online measurements rejected as sensor failures (non-positive power:
  /// a frozen RAPL counter during a sensor dropout).
  int64_t discarded_measurements() const { return discarded_measurements_; }
  void CountDiscardedMeasurement() { ++discarded_measurements_; }

  /// Predictor statistics (telemetry: ecl/socketN/predictor_*).
  int64_t predictor_hits() const { return predictor_hits_; }
  int64_t predictor_misses() const { return predictor_misses_; }
  int64_t predictor_seeded_configs() const { return predictor_seeded_; }
  int64_t predictor_measurements_skipped() const { return predictor_skipped_; }
  /// Mean ignorance of the last seeding pass (1 before any pass).
  double last_mean_ignorance() const { return last_mean_ignorance_; }

  const ProfileMaintenanceParams& params() const { return params_; }
  /// Toggles the strategies at runtime (experiments prime the profile with
  /// adaptation enabled, then freeze it for the "ECL static" arm).
  void SetEnabled(bool online, bool multiplexed) {
    params_.enable_online = online;
    params_.enable_multiplexed = multiplexed;
  }

 private:
  ProfileMaintenanceParams params_;
  int64_t online_updates_ = 0;
  int64_t multiplexed_evals_ = 0;
  int64_t discarded_measurements_ = 0;
  int64_t drift_flags_ = 0;
  int64_t predictor_hits_ = 0;
  int64_t predictor_misses_ = 0;
  int64_t predictor_seeded_ = 0;
  int64_t predictor_skipped_ = 0;
  double last_mean_ignorance_ = 1.0;
  size_t reeval_cursor_ = 0;
};

}  // namespace ecldb::ecl

#endif  // ECLDB_ECL_PROFILE_MAINTENANCE_H_
