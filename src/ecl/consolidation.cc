#include "ecl/consolidation.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"

namespace ecldb::ecl {

ConsolidationPolicy::ConsolidationPolicy(sim::Simulator* simulator,
                                         engine::Engine* engine,
                                         SystemEcl* system, LoadFn load,
                                         const ConsolidationParams& params)
    : simulator_(simulator),
      engine_(engine),
      system_(system),
      load_(std::move(load)),
      params_(params) {
  ECLDB_CHECK(simulator != nullptr && engine != nullptr && system != nullptr);
  ECLDB_CHECK(load_ != nullptr);
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("ecl/consolidation/ticks", [this] { return ticks_; });
    reg.AddCounterFn("ecl/consolidation/consolidation_moves",
                     [this] { return consolidation_moves_; });
    reg.AddCounterFn("ecl/consolidation/spread_moves",
                     [this] { return spread_moves_; });
    trace_lane_ = tel->trace().RegisterLane("ecl/consolidation");
  }
}

void ConsolidationPolicy::Start() {
  running_ = true;
  // Offset from the socket ECL ticks (which start at t+1ns) so a tick
  // observes the performance levels of a finished control interval.
  simulator_->ScheduleAfter(params_.interval, [this] { Tick(); });
}

void ConsolidationPolicy::Tick() {
  if (!running_) return;
  ++ticks_;
  // One batch of migrations at a time: placement decisions are made on
  // post-migration load observations, not on projections of projections.
  const int64_t done = engine_->migrator().completed();
  if (done != last_completed_seen_) {
    last_completed_seen_ = done;
    last_migration_time_ = simulator_->now();
  }
  if (engine_->migrator().active() == 0) {
    const double pressure = system_->pressure();
    // Post-migration dwell: a placement change perturbs latency until the
    // receiving ECL re-sizes, so reversing direction on that transient
    // flaps. The dwell gates reversals only — continuing in the same
    // direction (the next batch of a staged consolidation or spread) is
    // always allowed, and hard pressure (the limit is genuinely
    // threatened) spreads regardless of dwell.
    const bool holding =
        last_migration_time_ >= 0 &&
        simulator_->now() - last_migration_time_ < params_.post_migration_hold;
    const bool spread_gated =
        holding && last_direction_ == Direction::kConsolidate;
    const bool consolidate_gated =
        holding && last_direction_ == Direction::kSpread;
    if (pressure >= params_.spread_pressure_hard ||
        (!spread_gated && pressure >= params_.spread_pressure_min)) {
      Spread();
    } else if (!consolidate_gated &&
               pressure <= params_.consolidate_pressure_max) {
      Consolidate();
    }
  }
  simulator_->ScheduleAfter(params_.interval, [this] { Tick(); });
}

void ConsolidationPolicy::Consolidate() {
  engine::PlacementMap& placement = engine_->placement();
  const int num_sockets = placement.num_sockets();

  // Donor: the least-loaded socket still homing partitions; receiver: the
  // most-loaded other socket (packing into the busiest empties the donor
  // with the fewest moves). Ties resolve to the lower socket id — all
  // loads are deterministic simulation outputs.
  SocketId donor = -1, receiver = -1;
  double donor_load = 0.0, receiver_load = 0.0;
  int populated = 0;
  for (SocketId s = 0; s < num_sockets; ++s) {
    if (placement.PartitionsOn(s) == 0) continue;
    ++populated;
    const double load = load_(s);
    if (donor == -1 || load < donor_load) {
      donor = s;
      donor_load = load;
    }
  }
  if (populated < 2) return;
  for (SocketId s = 0; s < num_sockets; ++s) {
    if (s == donor || placement.PartitionsOn(s) == 0) continue;
    const double load = load_(s);
    if (receiver == -1 || load > receiver_load) {
      receiver = s;
      receiver_load = load;
    }
  }
  if (donor_load > params_.donor_load_max) return;
  if (receiver_load + donor_load > params_.target_load_ceiling) return;

  const std::vector<PartitionId> parts = placement.PartitionsOf(donor);
  const int moves =
      std::min<int>(params_.migrations_per_tick, static_cast<int>(parts.size()));
  int started = 0;
  for (int i = 0; i < moves; ++i) {
    if (engine_->migrator().StartMigration(parts[static_cast<size_t>(i)],
                                           receiver)) {
      ++consolidation_moves_;
      last_direction_ = Direction::kConsolidate;
      ++started;
    }
  }
  if (started > 0 && params_.telemetry != nullptr) {
    params_.telemetry->trace().Instant(
        trace_lane_, "ecl", "consolidate_batch", simulator_->now(),
        "\"donor\":" + std::to_string(donor) +
            ",\"receiver\":" + std::to_string(receiver) +
            ",\"migrations\":" + std::to_string(started));
  }
}

void ConsolidationPolicy::Spread() {
  engine::PlacementMap& placement = engine_->placement();
  const int num_sockets = placement.num_sockets();

  // Restore capacity: push partitions from the fullest socket onto the
  // emptiest one, preferring partitions whose initial home was the
  // destination (converging back to the constructed placement).
  SocketId src = -1, dst = -1;
  for (SocketId s = 0; s < num_sockets; ++s) {
    if (src == -1 || placement.PartitionsOn(s) > placement.PartitionsOn(src)) {
      src = s;
    }
    if (dst == -1 || placement.PartitionsOn(s) < placement.PartitionsOn(dst)) {
      dst = s;
    }
  }
  if (src == dst || placement.PartitionsOn(src) - placement.PartitionsOn(dst) < 2) {
    return;
  }

  std::vector<PartitionId> candidates = placement.PartitionsOf(src);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](PartitionId a, PartitionId b) {
                     return (placement.InitialHomeOf(a) == dst) >
                            (placement.InitialHomeOf(b) == dst);
                   });
  const int gap = placement.PartitionsOn(src) - placement.PartitionsOn(dst);
  const int moves = std::min<int>(
      {params_.spread_migrations_per_tick, gap / 2,
       static_cast<int>(candidates.size())});
  int started = 0;
  for (int i = 0; i < moves; ++i) {
    if (engine_->migrator().StartMigration(candidates[static_cast<size_t>(i)],
                                           dst)) {
      ++spread_moves_;
      last_direction_ = Direction::kSpread;
      ++started;
    }
  }
  if (started > 0 && params_.telemetry != nullptr) {
    params_.telemetry->trace().Instant(
        trace_lane_, "ecl", "spread_batch", simulator_->now(),
        "\"src\":" + std::to_string(src) + ",\"dst\":" + std::to_string(dst) +
            ",\"migrations\":" + std::to_string(started));
  }
}

}  // namespace ecldb::ecl
