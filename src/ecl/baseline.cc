#include "ecl/baseline.h"

namespace ecldb::ecl {

void BaselineController::Start() {
  const hwsim::Topology& topo = machine_->topology();
  const hwsim::FrequencyTable& freqs = machine_->freqs();
  machine_->SetEpb(hwsim::EpbSetting::kBalanced);
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    machine_->SetUncoreMode(s, hwsim::UncoreMode::kAuto);
    machine_->ApplySocketConfig(
        s, hwsim::SocketConfig::AllOn(topo, freqs.max_core(), freqs.max_uncore()));
  }
}

}  // namespace ecldb::ecl
