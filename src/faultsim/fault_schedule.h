#ifndef ECLDB_FAULTSIM_FAULT_SCHEDULE_H_
#define ECLDB_FAULTSIM_FAULT_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ecldb::faultsim {

/// The fault taxonomy of the injection subsystem (docs/architecture.md,
/// "Fault model & recovery"). Every kind maps to exactly one hook on
/// hwsim::Cluster / NetworkModel / Machine, so injected behaviour is a
/// pure function of the schedule — seeded experiments stay byte-identical
/// across --jobs.
enum class FaultKind : int8_t {
  /// Ungraceful whole-node loss: the node drops to off, its in-flight and
  /// queued queries fail typed, its partitions re-home onto survivors.
  kNodeCrash,
  /// Repair: clears the failed flag and powers the node back up (it
  /// returns empty; the cluster ECL spreads partitions back by policy).
  kNodeRestart,
  /// NIC degradation: effective line rate becomes link_gbps * severity.
  kNicDegrade,
  /// Restores the NIC to full line rate.
  kNicRestore,
  /// Network partition: transfers touching the node cannot start for
  /// `duration` (the switch holds the frames; nothing is dropped).
  kNicPartition,
  /// Transient boot failure: the next `severity` power-up attempts of the
  /// node fail at boot completion, each burning a full boot of energy.
  kBootFailure,
  /// RAPL sensor dropout: published energy reads freeze until restore;
  /// ground-truth energy integration is unaffected.
  kRaplDropout,
  /// Ends a RAPL sensor dropout.
  kRaplRestore,
};

const char* FaultKindName(FaultKind k);

/// One scripted fault: what happens, to which node, when.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node = 0;
  /// kNicDegrade: link scale in (0, 1]; kBootFailure: attempt count.
  double severity = 0.0;
  /// kNicPartition: how long the node stays partitioned off.
  SimDuration duration = 0;
};

/// A scripted, deterministic fault sequence. Built once before the run and
/// armed on a FaultInjector; the injector schedules every event at its
/// fixed virtual time — no randomness, no wall-clock, so a schedule is
/// replayable and byte-identical across parallel run matrices.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  FaultSchedule& Crash(SimTime at, NodeId node);
  FaultSchedule& Restart(SimTime at, NodeId node);
  FaultSchedule& NicDegrade(SimTime at, NodeId node, double scale);
  FaultSchedule& NicRestore(SimTime at, NodeId node);
  FaultSchedule& NicPartition(SimTime at, NodeId node, SimDuration duration);
  FaultSchedule& BootFailures(SimTime at, NodeId node, int count);
  FaultSchedule& RaplDropout(SimTime at, NodeId node);
  FaultSchedule& RaplRestore(SimTime at, NodeId node);
};

}  // namespace ecldb::faultsim

#endif  // ECLDB_FAULTSIM_FAULT_SCHEDULE_H_
