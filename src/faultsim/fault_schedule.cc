#include "faultsim/fault_schedule.h"

namespace ecldb::faultsim {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeRestart: return "node_restart";
    case FaultKind::kNicDegrade: return "nic_degrade";
    case FaultKind::kNicRestore: return "nic_restore";
    case FaultKind::kNicPartition: return "nic_partition";
    case FaultKind::kBootFailure: return "boot_failure";
    case FaultKind::kRaplDropout: return "rapl_dropout";
    case FaultKind::kRaplRestore: return "rapl_restore";
  }
  return "?";
}

FaultSchedule& FaultSchedule::Crash(SimTime at, NodeId node) {
  events.push_back({at, FaultKind::kNodeCrash, node, 0.0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::Restart(SimTime at, NodeId node) {
  events.push_back({at, FaultKind::kNodeRestart, node, 0.0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::NicDegrade(SimTime at, NodeId node,
                                         double scale) {
  events.push_back({at, FaultKind::kNicDegrade, node, scale, 0});
  return *this;
}

FaultSchedule& FaultSchedule::NicRestore(SimTime at, NodeId node) {
  events.push_back({at, FaultKind::kNicRestore, node, 1.0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::NicPartition(SimTime at, NodeId node,
                                           SimDuration duration) {
  events.push_back({at, FaultKind::kNicPartition, node, 0.0, duration});
  return *this;
}

FaultSchedule& FaultSchedule::BootFailures(SimTime at, NodeId node,
                                           int count) {
  events.push_back(
      {at, FaultKind::kBootFailure, node, static_cast<double>(count), 0});
  return *this;
}

FaultSchedule& FaultSchedule::RaplDropout(SimTime at, NodeId node) {
  events.push_back({at, FaultKind::kRaplDropout, node, 0.0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::RaplRestore(SimTime at, NodeId node) {
  events.push_back({at, FaultKind::kRaplRestore, node, 0.0, 0});
  return *this;
}

}  // namespace ecldb::faultsim
