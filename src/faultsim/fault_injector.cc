#include "faultsim/fault_injector.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace ecldb::faultsim {

FaultInjector::FaultInjector(sim::Simulator* simulator,
                             hwsim::Cluster* cluster,
                             engine::ClusterEngine* engine,
                             const FaultInjectorParams& params)
    : simulator_(simulator),
      cluster_(cluster),
      engine_(engine),
      params_(params) {
  ECLDB_CHECK(simulator != nullptr && cluster != nullptr);
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("faults/injected", [this] { return injected_; });
    reg.AddCounterFn("faults/skipped", [this] { return skipped_; });
    reg.AddCounterFn("faults/crashes", [this] { return cluster_->crashes(); });
    reg.AddCounterFn("faults/boot_failures",
                     [this] { return cluster_->boot_failures(); });
    reg.AddCounterFn("faults/deferred_transfers", [this] {
      return cluster_->network().deferred_transfers();
    });
    if (engine_ != nullptr) {
      reg.AddCounterFn("faults/queries_failed",
                       [this] { return engine_->QueriesFailed(); });
      reg.AddCounterFn("faults/forward_drops",
                       [this] { return engine_->forward_drops(); });
      reg.AddCounterFn("faults/crash_recoveries",
                       [this] { return engine_->crash_recoveries(); });
      reg.AddGauge("faults/recovery_bytes",
                   [this] { return engine_->recovery_bytes(); });
    }
    trace_lane_ = tel->trace().RegisterLane("faults");
  }
}

void FaultInjector::SetNodeHooks(NodeHook on_crash, NodeHook on_restored) {
  on_crash_ = std::move(on_crash);
  on_restored_ = std::move(on_restored);
}

void FaultInjector::Arm() {
  ECLDB_CHECK_MSG(!armed_, "fault injector armed twice");
  armed_ = true;
  for (const FaultEvent& e : params_.schedule.events) {
    simulator_->Schedule(e.at, [this, e] { Apply(e); });
  }
}

void FaultInjector::Apply(const FaultEvent& e) {
  ECLDB_CHECK(e.node >= 0 && e.node < cluster_->num_nodes());
  const NodeId n = e.node;
  switch (e.kind) {
    case FaultKind::kNodeCrash: {
      if (cluster_->state(n) == hwsim::Cluster::NodeState::kOff) {
        // Already off (policy power-down raced the schedule): there is
        // nothing to crash, and nothing on it to lose.
        ++skipped_;
        return;
      }
      if (on_crash_ != nullptr) on_crash_(n);
      cluster_->Crash(n);
      if (engine_ != nullptr) engine_->OnNodeCrash(n);
      break;
    }
    case FaultKind::kNodeRestart: {
      if (!cluster_->IsFailed(n)) {
        ++skipped_;
        return;
      }
      cluster_->ClearFailed(n);
      if (cluster_->state(n) == hwsim::Cluster::NodeState::kOff) {
        cluster_->PowerUp(n, [this, n] {
          if (on_restored_ != nullptr) on_restored_(n);
        });
      }
      break;
    }
    case FaultKind::kNicDegrade:
      cluster_->network().SetLinkScale(n, e.severity);
      break;
    case FaultKind::kNicRestore:
      cluster_->network().SetLinkScale(n, 1.0);
      break;
    case FaultKind::kNicPartition:
      cluster_->network().SetLinkDownUntil(n, e.at + e.duration);
      break;
    case FaultKind::kBootFailure:
      cluster_->InjectBootFailures(n, static_cast<int>(e.severity));
      break;
    case FaultKind::kRaplDropout:
      cluster_->machine(n).SetRaplDropout(true);
      break;
    case FaultKind::kRaplRestore:
      cluster_->machine(n).SetRaplDropout(false);
      break;
  }
  ++injected_;
  if (params_.telemetry != nullptr) {
    params_.telemetry->trace().Instant(
        trace_lane_, "faults", FaultKindName(e.kind), simulator_->now(),
        "\"node\":" + std::to_string(n));
  }
}

}  // namespace ecldb::faultsim
