#ifndef ECLDB_FAULTSIM_FAULT_INJECTOR_H_
#define ECLDB_FAULTSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>

#include "engine/cluster_engine.h"
#include "faultsim/fault_schedule.h"
#include "hwsim/cluster.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace ecldb::faultsim {

struct FaultInjectorParams {
  FaultSchedule schedule;
  /// Optional telemetry: the injector registers the fault counters
  /// (faults/injected, faults/crashes, ...). Registration lives HERE, not
  /// in the cluster/engine constructors, so runs without an injector keep
  /// their metric registry — and hence their golden telemetry dumps —
  /// byte-identical to pre-fault builds.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Drives a FaultSchedule against the hardware simulation and the engine's
/// recovery path. Construction is passive; Arm() schedules every event at
/// its scripted virtual time. The injector draws no randomness and reads
/// no wall clock, so a seeded experiment with a fault schedule is
/// byte-identical across RunMatrix --jobs.
///
/// Crash sequencing per kNodeCrash event:
///   on_crash hook (stop the node's ECL)  ->  hwsim::Cluster::Crash
///   ->  ClusterEngine::OnNodeCrash (fail inflight, cancel migrations,
///       re-home + recovery copy).
/// A kNodeRestart clears the failed flag and powers the node up; the
/// on_restored hook (restart the node's ECL) runs at boot completion.
class FaultInjector {
 public:
  /// Node lifecycle hooks, mirroring ClusterEcl::SetNodeHooks: `on_crash`
  /// runs synchronously before the hardware crash (stop the node ECL so
  /// its pending evaluations are invalidated), `on_restored` when a
  /// restarted node reaches serving state.
  using NodeHook = std::function<void(NodeId)>;

  /// `engine` may be null (hardware-only tests); crash recovery steps are
  /// then skipped and only the hwsim state changes.
  FaultInjector(sim::Simulator* simulator, hwsim::Cluster* cluster,
                engine::ClusterEngine* engine,
                const FaultInjectorParams& params);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void SetNodeHooks(NodeHook on_crash, NodeHook on_restored);

  /// Schedules every event of the schedule. Call once, before running.
  void Arm();

  int64_t injected() const { return injected_; }
  /// Events that found the target in a state the fault cannot apply to
  /// (e.g. crashing a node that is already off) and were skipped.
  int64_t skipped() const { return skipped_; }

 private:
  void Apply(const FaultEvent& e);

  sim::Simulator* simulator_;
  hwsim::Cluster* cluster_;
  engine::ClusterEngine* engine_;
  FaultInjectorParams params_;
  NodeHook on_crash_;
  NodeHook on_restored_;
  bool armed_ = false;
  int64_t injected_ = 0;
  int64_t skipped_ = 0;
  int trace_lane_ = 0;
};

}  // namespace ecldb::faultsim

#endif  // ECLDB_FAULTSIM_FAULT_INJECTOR_H_
