// Ablation: SLO tiers under a flash crowd — what admission control buys
// when demand exceeds capacity and energy control would otherwise chase
// unserviceable load.
//
// Three tenants (premium / standard / best-effort, millions of simulated
// users aggregated into open-loop arrival processes) share one machine
// under the full ECL stack. A 10x flash crowd hits mid-trace. Without
// admission control the engine accepts 3x capacity, builds a minute of
// backlog, and burns the whole trace at full width draining it — every
// tier's tail latency explodes together. With pressure-driven shedding
// the entrance degrades best-effort first and standard second, keeps the
// premium tier inside its 99.9 % deadline, and the shed demand never
// reaches the ECL — which narrows the machine back down instead of
// racing the backlog. The energy delta at equal trace length is the
// quantified energy-vs-SLO trade.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiment/loadgen_trace.h"
#include "experiment/run_matrix.h"
#include "loadgen/loadgen.h"
#include "workload/kv.h"

using namespace ecldb;
using experiment::SloRunOptions;
using experiment::SloRunResult;

namespace {

constexpr SimDuration kTraceDuration = Seconds(120);
constexpr double kBaseLoad = 0.3;
constexpr double kCrowdPeak = 10.0;

loadgen::TenantSpec MakeTenant(const char* name, loadgen::SloClass cls,
                               double weight, int64_t users,
                               bool flash_crowd) {
  loadgen::TenantSpec t;
  t.name = name;
  t.slo_class = cls;
  t.weight = weight;
  t.arrival.num_users = users;
  t.arrival.per_user_qps = 0.01;
  if (cls == loadgen::SloClass::kBestEffort) {
    // The scavenger tier is the bursty one: session swarms, not
    // independent clickers.
    t.arrival.kind = loadgen::ArrivalKind::kMmpp;
    t.arrival.mmpp.state_multipliers = {0.6, 1.4};
    t.arrival.mmpp.switch_rate_hz = 0.1;
  }
  if (flash_crowd) {
    loadgen::ShapeSpec crowd;
    crowd.name = "flash_crowd";
    crowd.magnitude = kCrowdPeak;
    crowd.start = Seconds(50);
    crowd.duration = Seconds(30);
    t.shapes.push_back(crowd);
  }
  return t;
}

SloRunOptions MakeOptions(bool flash_crowd, bool admission) {
  SloRunOptions options;
  options.run.prime_duration = Seconds(30);
  // Faster pressure updates: the admission loop reacts within a couple of
  // ticks of the crowd's 3 s ramp instead of half a second behind it.
  options.run.ecl.system.interval = Millis(250);
  // Shed earlier than the defaults: the crowd is 3x capacity, so waiting
  // until pressure is nearly saturated only lengthens the onset backlog
  // the premium tier then queues behind.
  options.loadgen.admission.classes[static_cast<size_t>(
      loadgen::SloClass::kStandard)] = {0.0, 0.0, 0.50, 0.85};
  options.loadgen.admission.classes[static_cast<size_t>(
      loadgen::SloClass::kBestEffort)] = {0.0, 0.0, 0.30, 0.60};
  // Crowd-survival SLAs: the contract is about what a tier is owed while
  // demand is 3x capacity, not about the easy steady state (where every
  // tier's tail sits far below these). The default 100 ms target remains
  // the ECL's internal latency limit; at p99.9 a hard 100 ms bound is not
  // deliverable through a flash crowd without per-class priority queues —
  // admission control bounds *how much* enters, not *who runs first*.
  options.loadgen.slo.classes[static_cast<size_t>(
      loadgen::SloClass::kPremium)] = {1500.0, 99.9};
  options.loadgen.slo.classes[static_cast<size_t>(
      loadgen::SloClass::kStandard)] = {2500.0, 99.0};
  options.loadgen.slo.classes[static_cast<size_t>(
      loadgen::SloClass::kBestEffort)] = {5000.0, 95.0};
  options.loadgen.duration = kTraceDuration;
  options.loadgen.tenants = {
      MakeTenant("premium", loadgen::SloClass::kPremium, 0.2, 400'000,
                 flash_crowd),
      MakeTenant("standard", loadgen::SloClass::kStandard, 0.3, 1'000'000,
                 flash_crowd),
      MakeTenant("besteff", loadgen::SloClass::kBestEffort, 0.5, 4'000'000,
                 flash_crowd),
  };
  options.total_load = kBaseLoad;
  options.admission_enabled = admission;
  return options;
}

SloRunResult Run(bool flash_crowd, bool admission) {
  return RunSloExperiment(
      [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
        workload::KvParams params;
        params.indexed = false;
        // Fat queries cut the event count (3x capacity offered at the
        // crowd peak multiplies the arrival rate; the capacity baseline
        // scales with the per-query cost) without getting so lumpy that
        // a single query's service time dominates the latency window.
        params.batch_gets = 4'000;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      MakeOptions(flash_crowd, admission));
}

double PeakPressure(const SloRunResult& r) {
  double p = 0.0;
  for (const experiment::SloSample& s : r.series) p = std::max(p, s.pressure);
  return p;
}

double PeakShedFraction(const SloRunResult& r) {
  double f = 0.0;
  for (const experiment::SloSample& s : r.series) {
    f = std::max(f, s.shed_fraction);
  }
  return f;
}

void AddClassRows(TablePrinter& table, const std::string& arm,
                  const SloRunResult& r) {
  for (int i = 0; i < loadgen::kNumSloClasses; ++i) {
    const experiment::SloClassStats& c = r.classes[static_cast<size_t>(i)];
    char tail_label[32];
    std::snprintf(tail_label, sizeof(tail_label), "p%.4g",
                  c.target_percentile);
    table.AddRow(
        {arm, std::string(loadgen::SloClassName(
                  static_cast<loadgen::SloClass>(i))),
         FmtInt(c.arrivals), FmtInt(c.shed), FmtInt(c.completed),
         FmtInt(c.violations), Fmt(c.mean_ms, 2),
         std::string(tail_label) + "=" + Fmt(c.tail_ms, 1) + "ms",
         Fmt(c.deadline_ms, 0), c.slo_met ? "yes" : "NO"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "ablation_slo_tiers", "beyond the paper (traffic & admission)",
      "Three SLO tiers (5.4M simulated users) under a 10x flash crowd on "
      "one ECL-controlled machine: pressure-driven load shedding vs "
      "admit-everything, at equal trace length.");

  // Arm 0: steady trace, admission on (control: shedding stays idle).
  // Arm 1: flash crowd, admission off. Arm 2: flash crowd, admission on.
  std::vector<SloRunResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    results[static_cast<size_t>(i)] =
        Run(/*flash_crowd=*/i > 0, /*admission=*/i != 1);
  });
  const char* arm_names[] = {"steady+admission", "crowd, admit-all",
                             "crowd+shedding"};

  TablePrinter per_class({"arm", "class", "arrivals", "shed", "completed",
                          "violations", "mean ms", "SLO tail", "deadline ms",
                          "SLO met"});
  for (size_t i = 0; i < results.size(); ++i) {
    AddClassRows(per_class, arm_names[i], results[i]);
  }
  per_class.Print();

  TablePrinter summary({"arm", "arrivals", "shed", "completed", "energy J",
                        "avg W", "peak pressure", "peak shed frac"});
  for (size_t i = 0; i < results.size(); ++i) {
    const SloRunResult& r = results[i];
    summary.AddRow({arm_names[i], FmtInt(r.arrivals), FmtInt(r.shed),
                    FmtInt(r.completed), Fmt(r.energy_j, 0),
                    Fmt(r.avg_power_w, 1), Fmt(PeakPressure(r), 2),
                    Fmt(PeakShedFraction(r), 2)});
  }
  summary.Print();

  const SloRunResult& admit_all = results[1];
  const SloRunResult& shedding = results[2];
  const experiment::SloClassStats& prem_all = admit_all.classes[0];
  const experiment::SloClassStats& prem_shed = shedding.classes[0];
  std::printf(
      "\nflash crowd: shedding saves %.1f %% energy over the trace "
      "(%.0f J -> %.0f J) by refusing %lld of %lld arrivals; premium "
      "p%.4g goes %.1f ms -> %.1f ms against a %.0f ms deadline "
      "(admit-all: %s, shedding: %s).\n",
      admit_all.energy_j > 0.0
          ? 100.0 * (admit_all.energy_j - shedding.energy_j) /
                admit_all.energy_j
          : 0.0,
      admit_all.energy_j, shedding.energy_j,
      static_cast<long long>(shedding.shed),
      static_cast<long long>(shedding.arrivals), prem_shed.target_percentile,
      prem_all.tail_ms, prem_shed.tail_ms, prem_shed.deadline_ms,
      prem_all.slo_met ? "SLO met" : "SLO violated",
      prem_shed.slo_met ? "SLO met" : "SLO violated");
  std::printf(
      "The shed demand is visible to the ECL as a pressure floor, so the "
      "machine neither idles into the refused load nor races a backlog it "
      "was never going to serve in time; best-effort degrades first, "
      "standard second, premium never.\n");

  // Time series of the shedding arm for the plots.
  CsvWriter csv("bench_results/ablation_slo_tiers.csv",
                {"t_s", "offered_qps", "power_w", "latency_window_ms",
                 "pressure", "shed_fraction", "active_threads"});
  for (const experiment::SloSample& s : shedding.series) {
    csv.AddNumericRow({s.t_s, s.offered_qps, s.power_w, s.latency_window_ms,
                       s.pressure, s.shed_fraction,
                       static_cast<double>(s.width)});
  }
  if (csv.ok()) {
    std::printf("[series exported to bench_results/ablation_slo_tiers.csv]\n");
  }
  return 0;
}
