// Reproduces Table 1: relative energy savings of the ECL vs the baseline
// for every workload x load-profile combination, plus the most
// energy-efficient configuration per workload.
#include <functional>
#include <memory>

#include "bench_common.h"
#include "experiment/experiment.h"
#include "experiment/run_matrix.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/ssb.h"
#include "workload/tatp.h"

using namespace ecldb;
using experiment::ControlMode;
using experiment::RunOptions;
using experiment::RunResult;

namespace {

// Compressed to 60 s per run to keep the battery fast; relative savings
// are duration-invariant (see DESIGN.md).
constexpr SimDuration kRunDuration = Seconds(60);

struct WorkloadEntry {
  const char* name;
  experiment::WorkloadFactory factory;
};

std::vector<WorkloadEntry> Workloads() {
  std::vector<WorkloadEntry> entries;
  for (const bool indexed : {true, false}) {
    entries.push_back(
        {indexed ? "TATP (indexed)" : "TATP (non-indexed)",
         [indexed](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
           workload::TatpParams p;
           p.indexed = indexed;
           return std::make_unique<workload::TatpWorkload>(e, p);
         }});
    entries.push_back(
        {indexed ? "SSB (indexed)" : "SSB (non-indexed)",
         [indexed](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
           workload::SsbParams p;
           p.indexed = indexed;
           p.sim_lineorder_rows = 6'000'000;
           return std::make_unique<workload::SsbWorkload>(e, p);
         }});
    entries.push_back(
        {indexed ? "KV store (indexed)" : "KV store (non-indexed)",
         [indexed](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
           workload::KvParams p;
           p.indexed = indexed;
           return std::make_unique<workload::KvWorkload>(e, p);
         }});
  }
  return entries;
}

std::unique_ptr<workload::LoadProfile> MakeProfile(const char* name) {
  if (std::string(name) == "spike") {
    return std::make_unique<workload::SpikeProfile>(kRunDuration);
  }
  return std::make_unique<workload::TwitterProfile>(7, kRunDuration);
}

struct Arm {
  const WorkloadEntry* workload;
  const char* profile_name;
  ControlMode mode;
};

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "table1_energy_savings", "paper Table 1",
      "Relative energy savings (RAPL) of the ECL vs the race-to-idle "
      "baseline for all workload x load-profile combinations, and the most "
      "energy-efficient configuration found per workload.");

  // All (workload x profile x mode) arms are independent simulations; run
  // them on a thread pool and print in deterministic order afterwards.
  const std::vector<WorkloadEntry> workloads = Workloads();
  std::vector<Arm> arms;
  for (const WorkloadEntry& w : workloads) {
    for (const char* profile_name : {"spike", "twitter"}) {
      for (const ControlMode mode : {ControlMode::kBaseline, ControlMode::kEcl}) {
        arms.push_back(Arm{&w, profile_name, mode});
      }
    }
  }
  std::vector<RunResult> results(arms.size());
  experiment::RunMatrix(
      static_cast<int>(arms.size()), jobs, [&](int i) {
        const Arm& arm = arms[static_cast<size_t>(i)];
        const std::unique_ptr<workload::LoadProfile> profile =
            MakeProfile(arm.profile_name);
        RunOptions opt;
        opt.mode = arm.mode;
        results[static_cast<size_t>(i)] =
            RunLoadExperiment(arm.workload->factory, *profile, opt);
      });

  TablePrinter table({"workload", "profile", "baseline J", "ECL J",
                      "saving %", "most energy-efficient config"});
  for (size_t i = 0; i + 1 < arms.size(); i += 2) {
    const RunResult& base = results[i];
    const RunResult& ecl = results[i + 1];
    table.AddRow({arms[i].workload->name, arms[i].profile_name,
                  Fmt(base.energy_j, 0), Fmt(ecl.energy_j, 0),
                  Fmt(experiment::SavingsPercent(base, ecl), 1),
                  ecl.best_config});
  }
  table.Print();

  std::printf(
      "\nShape check (paper Table 1): non-indexed workloads save the most "
      "(memory controllers bottleneck; the KV store's pure column scans "
      "save the most of all, wanting few threads at the lowest frequency); "
      "TATP and SSB favor more threads at medium frequencies "
      "(communication + tuple reconstruction); indexed workloads save "
      "15.8-23.4 %% with a generally lower uncore clock; SSB needs a "
      "higher uncore clock than TATP (more data shipped between "
      "partitions).\n");
  return 0;
}
