// Reproduces Table 1: relative energy savings of the ECL vs the baseline
// for every workload x load-profile combination, plus the most
// energy-efficient configuration per workload.
#include <functional>
#include <memory>

#include "bench_common.h"
#include "experiment/experiment.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/ssb.h"
#include "workload/tatp.h"

using namespace ecldb;
using experiment::ControlMode;
using experiment::RunOptions;
using experiment::RunResult;

namespace {

// Compressed to 60 s per run to keep the battery fast; relative savings
// are duration-invariant (see DESIGN.md).
constexpr SimDuration kRunDuration = Seconds(60);

struct WorkloadEntry {
  const char* name;
  experiment::WorkloadFactory factory;
};

std::vector<WorkloadEntry> Workloads() {
  std::vector<WorkloadEntry> entries;
  for (const bool indexed : {true, false}) {
    entries.push_back(
        {indexed ? "TATP (indexed)" : "TATP (non-indexed)",
         [indexed](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
           workload::TatpParams p;
           p.indexed = indexed;
           return std::make_unique<workload::TatpWorkload>(e, p);
         }});
    entries.push_back(
        {indexed ? "SSB (indexed)" : "SSB (non-indexed)",
         [indexed](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
           workload::SsbParams p;
           p.indexed = indexed;
           p.sim_lineorder_rows = 6'000'000;
           return std::make_unique<workload::SsbWorkload>(e, p);
         }});
    entries.push_back(
        {indexed ? "KV store (indexed)" : "KV store (non-indexed)",
         [indexed](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
           workload::KvParams p;
           p.indexed = indexed;
           return std::make_unique<workload::KvWorkload>(e, p);
         }});
  }
  return entries;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "table1_energy_savings", "paper Table 1",
      "Relative energy savings (RAPL) of the ECL vs the race-to-idle "
      "baseline for all workload x load-profile combinations, and the most "
      "energy-efficient configuration found per workload.");

  TablePrinter table({"workload", "profile", "baseline J", "ECL J",
                      "saving %", "most energy-efficient config"});
  for (const WorkloadEntry& w : Workloads()) {
    for (const char* profile_name : {"spike", "twitter"}) {
      std::unique_ptr<workload::LoadProfile> profile;
      if (std::string(profile_name) == "spike") {
        profile = std::make_unique<workload::SpikeProfile>(kRunDuration);
      } else {
        profile = std::make_unique<workload::TwitterProfile>(7, kRunDuration);
      }
      RunOptions base_opt;
      base_opt.mode = ControlMode::kBaseline;
      RunOptions ecl_opt;
      ecl_opt.mode = ControlMode::kEcl;
      const RunResult base = RunLoadExperiment(w.factory, *profile, base_opt);
      const RunResult ecl = RunLoadExperiment(w.factory, *profile, ecl_opt);
      table.AddRow({w.name, profile_name, Fmt(base.energy_j, 0),
                    Fmt(ecl.energy_j, 0),
                    Fmt(experiment::SavingsPercent(base, ecl), 1),
                    ecl.best_config});
    }
  }
  table.Print();

  std::printf(
      "\nShape check (paper Table 1): non-indexed workloads save the most "
      "(memory controllers bottleneck; the KV store's pure column scans "
      "save the most of all, wanting few threads at the lowest frequency); "
      "TATP and SSB favor more threads at medium frequencies "
      "(communication + tuple reconstruction); indexed workloads save "
      "15.8-23.4 %% with a generally lower uncore clock; SSB needs a "
      "higher uncore clock than TATP (more data shipped between "
      "partitions).\n");
  return 0;
}
