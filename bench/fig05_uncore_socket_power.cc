// Reproduces Figure 5: socket-specific power consumption for different
// uncore clocks and the inter-socket uncore-halt dependency.
#include "bench_common.h"

using namespace ecldb;

int main() {
  bench::PrintHeader(
      "fig05_uncore_socket_power", "paper Fig. 5",
      "Per-socket package power for a halted uncore clock (requires BOTH "
      "sockets idle) and for pinned uncore frequencies while the other "
      "socket is active.");
  bench::MachineRig rig;
  hwsim::Machine& m = rig.machine;
  const hwsim::Topology& topo = m.topology();

  TablePrinter table({"scenario", "socket 0 pkg W", "socket 1 pkg W"});

  // Both sockets idle: uncore clocks can halt, LLCs power-gate.
  rig.simulator.RunFor(Millis(500));
  table.AddRow({"uncore halted (all sockets idle)", Fmt(m.InstantPkgPowerW(0), 1),
                Fmt(m.InstantPkgPowerW(1), 1)});

  // The measured socket is idle, but the OTHER socket runs one thread: the
  // idle socket's uncore cannot halt (remote memory must stay reachable).
  for (double uncore : {1.2, 2.1, 3.0}) {
    // Measure socket 0 idle at `uncore` with socket 1 active.
    hwsim::SocketConfig idle0 = hwsim::SocketConfig::Idle(topo);
    idle0.uncore_freq_ghz = uncore;
    m.ApplySocketConfig(0, idle0);
    m.ApplySocketConfig(1, hwsim::SocketConfig::FirstThreads(topo, 1, 1.2, 1.2));
    m.SetThreadLoad(topo.ThreadOf(1, 0, 0), &workload::ComputeBound(), 1.0);
    rig.simulator.RunFor(Millis(500));
    const double p0 = m.InstantPkgPowerW(0);
    // Mirror: socket 1 idle at `uncore`, socket 0 active.
    m.SetThreadLoad(topo.ThreadOf(1, 0, 0), nullptr, 0.0);
    hwsim::SocketConfig idle1 = hwsim::SocketConfig::Idle(topo);
    idle1.uncore_freq_ghz = uncore;
    m.ApplySocketConfig(1, idle1);
    m.ApplySocketConfig(0, hwsim::SocketConfig::FirstThreads(topo, 1, 1.2, 1.2));
    m.SetThreadLoad(topo.ThreadOf(0, 0, 0), &workload::ComputeBound(), 1.0);
    rig.simulator.RunFor(Millis(500));
    const double p1 = m.InstantPkgPowerW(1);
    m.SetThreadLoad(topo.ThreadOf(0, 0, 0), nullptr, 0.0);
    m.ApplySocketConfig(0, hwsim::SocketConfig::Idle(topo));
    m.ApplySocketConfig(1, hwsim::SocketConfig::Idle(topo));

    char label[64];
    std::snprintf(label, sizeof(label), "idle socket, uncore %.1f GHz (peer active)",
                  uncore);
    table.AddRow({label, Fmt(p0, 1), Fmt(p1, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): a socket's uncore only halts when ALL sockets "
      "are idle; with an active peer even an idle socket pays for its "
      "uncore clock, growing with the frequency. Socket 1 draws less than "
      "socket 0 (asymmetry the paper observed but could not explain).\n");
  return 0;
}
