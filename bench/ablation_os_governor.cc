// Ablation: why DBMS-integrated energy control — comparing the OS's
// ondemand-style frequency governor against the ECL on a polling
// data-oriented DBMS (paper Section 1's motivation made executable).
//
// The OS measures utilization as C0 residency; a polling message layer
// keeps every worker in C0, so the governor sees 100 % utilization at any
// query load and never scales down. Even with a hypothetical *blocking*
// engine (a usable utilization signal) the governor only controls core
// frequencies — no C-states for pinned threads, no uncore clock, no
// workload-dependent configuration choice.
#include <memory>

#include "bench_common.h"
#include "ecl/baseline.h"
#include "ecl/ecl.h"
#include "ecl/os_governor.h"
#include "engine/engine.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

using namespace ecldb;

namespace {

enum class Mode { kBaseline, kGovernorPolling, kGovernorBlocking, kEcl };

struct Outcome {
  double avg_power_w = 0.0;
  double p99_ms = 0.0;
  double mean_freq_ghz = 0.0;
};

Outcome Run(Mode mode, double load) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  workload::KvParams kvp;
  kvp.indexed = false;
  workload::KvWorkload kv(&engine, kvp);
  const double cap = workload::BaselineCapacityQps(machine.params(), kv);

  ecl::BaselineController baseline(&machine);
  std::unique_ptr<ecl::OsGovernor> governor;
  std::unique_ptr<ecl::EnergyControlLoop> loop;
  switch (mode) {
    case Mode::kBaseline:
      baseline.Start();
      break;
    case Mode::kGovernorPolling:
    case Mode::kGovernorBlocking: {
      ecl::OsGovernorParams gp;
      gp.sees_polling_as_busy = (mode == Mode::kGovernorPolling);
      governor = std::make_unique<ecl::OsGovernor>(&sim, &engine, gp);
      governor->Start();
      break;
    }
    case Mode::kEcl:
      loop = std::make_unique<ecl::EnergyControlLoop>(&sim, &engine,
                                                      ecl::EclParams{});
      loop->Start();
      engine.scheduler().SetSyntheticLoad(&kv.profile());
      sim.RunFor(Seconds(30));
      engine.scheduler().SetSyntheticLoad(nullptr);
      break;
  }
  engine.latency().ResetRunStats();

  workload::ConstantProfile profile(load, Seconds(30));
  workload::DriverParams dp;
  dp.capacity_qps = cap;
  workload::LoadDriver driver(&sim, &engine, &kv, &profile, dp);
  const double e0 = machine.TotalEnergyJoules();
  driver.Start();
  double freq_sum = 0.0;
  int freq_samples = 0;
  for (int t = 0; t < 30; ++t) {
    sim.RunFor(Seconds(1));
    const double f = machine.effective_config().sockets[0].MeanActiveCoreFreq(
        machine.topology());
    if (f > 0.0) {  // skip RTI idle-phase samples
      freq_sum += f;
      ++freq_samples;
    }
  }
  Outcome o;
  o.avg_power_w = (machine.TotalEnergyJoules() - e0) / 30.0;
  sim.RunFor(Seconds(2));
  o.p99_ms = engine.latency().all().Percentile(99);
  o.mean_freq_ghz = freq_samples > 0 ? freq_sum / freq_samples : 0.0;
  return o;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ablation_os_governor", "paper Section 1 (motivation ablation)",
      "OS ondemand-style governor vs DBMS-integrated ECL on the polling "
      "data-oriented engine, non-indexed key-value store at 25 % load.");

  TablePrinter table({"controller", "avg power W", "p99 ms",
                      "mean core GHz", "saving vs baseline %"});
  const Outcome base = Run(Mode::kBaseline, 0.25);
  auto row = [&](const char* name, const Outcome& o) {
    table.AddRow({name, Fmt(o.avg_power_w, 1), Fmt(o.p99_ms, 1),
                  Fmt(o.mean_freq_ghz, 2),
                  Fmt(100.0 * (1.0 - o.avg_power_w / base.avg_power_w), 1)});
  };
  row("baseline (race-to-idle)", base);
  row("OS governor (polling DBMS)", Run(Mode::kGovernorPolling, 0.25));
  row("OS governor (hypothetical blocking DBMS)",
      Run(Mode::kGovernorBlocking, 0.25));
  row("ECL (DBMS-integrated)", Run(Mode::kEcl, 0.25));
  table.Print();

  std::printf(
      "\nThe polling message layer keeps every worker in C0, so the OS "
      "governor sees 100 %% utilization and never scales down (power == "
      "baseline). Even with a usable utilization signal the governor only "
      "touches core frequencies: it cannot power threads down (they are "
      "pinned and polling), cannot pin the uncore clock, and knows nothing "
      "about the workload's energy profile - the gap to the ECL remains.\n");
  return 0;
}
