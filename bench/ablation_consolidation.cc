// Ablation: dynamic partition placement (whole-socket consolidation) on
// top of the adaptive ECL, vs the adaptive ECL with the static blockwise
// placement.
//
// The socket-level ECL can only scale a socket down to its most efficient
// low configuration; as long as a socket homes partitions, its uncore,
// DRAM and package base power stay up. In a sustained low-load phase the
// consolidation policy live-migrates every partition off the least-loaded
// socket, which then parks in the deep package-sleep state — savings the
// per-socket control loop cannot reach. When the load returns, latency
// pressure spreads the partitions back before the limit is violated.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiment/experiment.h"
#include "experiment/run_matrix.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;
using experiment::RunOptions;
using experiment::RunResult;

namespace {

// High -> low -> high: 40 s at 60 % load, 120 s at 10 % (long enough to
// amortize the migration traffic and park the donor socket), then back.
constexpr double kHighLoad = 0.6;
constexpr double kLowLoad = 0.1;
constexpr SimTime kLowStart = Seconds(40);
constexpr SimTime kLowEnd = Seconds(160);
constexpr SimDuration kDuration = Seconds(200);

RunResult Run(bool consolidation, telemetry::Telemetry* tel) {
  RunOptions options;
  options.mode = experiment::ControlMode::kEcl;
  options.ecl.consolidation.enabled = consolidation;
  // Exclude idle-poll instructions from the measured performance level:
  // a consolidated receiver socket runs many mostly-idle threads whose
  // poll loops retire instructions at full rate, which overstated demand
  // and kept the receiver's configuration wider than the real work needs.
  // Applied to both arms so the comparison stays apples-to-apples.
  options.ecl.socket.exclude_poll_instructions = true;
  options.engine.migration.min_shard_bytes = 128.0 * (1 << 20);
  options.telemetry = tel;
  workload::StepProfile profile({{0, kHighLoad},
                                 {kLowStart, kLowLoad},
                                 {kLowEnd, kHighLoad}},
                                kDuration);
  return RunLoadExperiment(
      [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
        workload::KvParams params;
        params.indexed = false;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      profile, options);
}

/// Reads a whole file; empty string when unreadable.
std::string Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return data;
}

/// Energy over the low-load phase, integrated from the power samples
/// (each sample's power is averaged over the preceding sample period).
double LowPhaseEnergyJ(const RunResult& r, double period_s) {
  double j = 0.0;
  for (const experiment::Sample& s : r.series) {
    if (s.t_s > ToSeconds(kLowStart) && s.t_s <= ToSeconds(kLowEnd)) {
      j += s.rapl_power_w * period_s;
    }
  }
  return j;
}

/// Minimum per-socket power of any sample in the low phase: with
/// consolidation the donor socket reaches the deep package-sleep floor.
double MinSocketPowerW(const RunResult& r) {
  double w = 1e18;
  for (const experiment::Sample& s : r.series) {
    if (s.t_s <= ToSeconds(kLowStart) || s.t_s > ToSeconds(kLowEnd)) continue;
    for (double sw : s.socket_power_w) w = std::min(w, sw);
  }
  return w;
}

/// Most lopsided placement reached during the low phase (partitions on
/// the fullest socket; 48 == everything on one socket).
int MaxPartitionsOnOneSocket(const RunResult& r) {
  int parts = 0;
  for (const experiment::Sample& s : r.series) {
    for (int p : s.partitions_on_socket) parts = std::max(parts, p);
  }
  return parts;
}

/// Worst windowed latency while consolidated (the latency limit must hold
/// *during* the low phase; the step edges are transition transients).
double LowPhaseMaxLatencyMs(const RunResult& r) {
  double ms = 0.0;
  for (const experiment::Sample& s : r.series) {
    if (s.t_s > ToSeconds(kLowStart) + 30.0 && s.t_s <= ToSeconds(kLowEnd)) {
      ms = std::max(ms, s.latency_window_ms);
    }
  }
  return ms;
}

/// Seconds after the step back to high load until the windowed latency
/// re-enters the limit (spread-back / discovery recovery time).
double RecoverySeconds(const RunResult& r, double limit_ms) {
  double recovered_at = ToSeconds(kDuration);
  for (auto it = r.series.rbegin(); it != r.series.rend(); ++it) {
    if (it->t_s <= ToSeconds(kLowEnd)) break;
    if (it->latency_window_ms > limit_ms) {
      recovered_at = it->t_s;
      break;
    }
  }
  return std::max(0.0, recovered_at - ToSeconds(kLowEnd));
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "ablation_consolidation", "beyond the paper (design ablation)",
      "Whole-socket consolidation via live partition migration vs the "
      "adaptive ECL with static placement, on a high->low->high step "
      "profile (non-indexed key-value store).");

  // One telemetry context per arm (the arms run concurrently under
  // RunMatrix and gauges bind to run-local objects).
  std::vector<std::unique_ptr<telemetry::Telemetry>> tels;
  for (int i = 0; i < 2; ++i) {
    telemetry::TelemetryParams tp;
    tp.enabled = true;
    tp.sample_period = Millis(500);  // matches RunOptions::sample_period
    tels.push_back(std::make_unique<telemetry::Telemetry>(tp));
  }
  std::vector<RunResult> results(2);
  experiment::RunMatrix(2, jobs, [&](int i) {
    results[static_cast<size_t>(i)] =
        Run(i == 1, tels[static_cast<size_t>(i)].get());
  });
  const RunResult& ecl = results[0];
  const RunResult& cons = results[1];

  const double period_s = 0.5;
  const double limit_ms = 100.0;
  TablePrinter table({"mode", "total J", "low-phase J", "min socket W",
                      "max parts/socket", "migrations", "low-phase max ms",
                      "recovery s", "completed"});
  table.AddRow({"adaptive ECL", Fmt(ecl.energy_j, 0),
                Fmt(LowPhaseEnergyJ(ecl, period_s), 0),
                Fmt(MinSocketPowerW(ecl), 1),
                FmtInt(MaxPartitionsOnOneSocket(ecl)), FmtInt(ecl.migrations),
                Fmt(LowPhaseMaxLatencyMs(ecl), 1),
                Fmt(RecoverySeconds(ecl, limit_ms), 1), FmtInt(ecl.completed)});
  table.AddRow({"ECL + consolidation", Fmt(cons.energy_j, 0),
                Fmt(LowPhaseEnergyJ(cons, period_s), 0),
                Fmt(MinSocketPowerW(cons), 1),
                FmtInt(MaxPartitionsOnOneSocket(cons)), FmtInt(cons.migrations),
                Fmt(LowPhaseMaxLatencyMs(cons), 1),
                Fmt(RecoverySeconds(cons, limit_ms), 1),
                FmtInt(cons.completed)});
  table.Print();

  const double low_ecl = LowPhaseEnergyJ(ecl, period_s);
  const double low_cons = LowPhaseEnergyJ(cons, period_s);
  std::printf(
      "\nlow-phase saving: %.1f %% (%.0f J -> %.0f J); consolidation moves "
      "%lld, spread moves %lld, shard bytes %.0f MB, stale-epoch forwards "
      "%lld\n",
      low_ecl > 0.0 ? 100.0 * (low_ecl - low_cons) / low_ecl : 0.0, low_ecl,
      low_cons, static_cast<long long>(cons.consolidation_moves),
      static_cast<long long>(cons.spread_moves),
      cons.migration_bytes / (1 << 20),
      static_cast<long long>(cons.stale_forwards));
  std::printf(
      "\nThe per-socket ECL alone keeps both sockets' uncore, DRAM and "
      "package base powered through the low phase. Consolidation empties "
      "the least-loaded socket (live migration: drain -> bandwidth-limited "
      "shard copy -> epoch-bumped rehome) and parks it in the deep "
      "package-sleep state; the return to high load raises latency "
      "pressure, which spreads partitions back before the limit is "
      "violated.\n");

  // Export the consolidation arm's series twice — through the bespoke
  // per-figure exporter and through the generic telemetry series — and
  // check the generic path reproduces the bespoke CSV byte-for-byte.
  bench::ExportSeries("ablation_consolidation", cons);
  const std::vector<std::string> kCols = {
      "t_s", "exp/offered_qps", "exp/rapl_power_w", "exp/latency_window_ms",
      "exp/active_threads", "exp/perf_level_frac", "exp/utilization"};
  const std::vector<std::string> kNames = {
      "t_s", "offered_qps", "rapl_power_w", "latency_window_ms",
      "active_threads", "perf_level_frac", "utilization"};
  const std::string tel_csv = "bench_results/ablation_consolidation_telemetry.csv";
  if (telemetry::WriteSeriesCsv(*tels[1], tel_csv, kCols, kNames)) {
    std::printf("[telemetry series exported to %s]\n", tel_csv.c_str());
    const std::string bespoke = Slurp("bench_results/ablation_consolidation.csv");
    const std::string generic = Slurp(tel_csv);
    std::printf("[telemetry series %s the bespoke exporter]\n",
                !bespoke.empty() && bespoke == generic
                    ? "byte-identical to"
                    : "DIFFERS from");
  }
  telemetry::WriteChromeTrace(*tels[1],
                              "bench_results/ablation_consolidation.trace.json");
  return 0;
}
