// Reproduces Figure 4: power costs for activating cores and HyperThreads
// for different core and uncore frequency combinations.
#include "bench_common.h"

using namespace ecldb;

namespace {

double PowerAt(bench::MachineRig& rig, int threads, double core, double uncore) {
  hwsim::Machine& m = rig.machine;
  m.ApplySocketConfig(0, hwsim::SocketConfig::FirstThreads(m.topology(),
                                                           threads, core, uncore));
  for (int t = 0; t < m.topology().threads_per_socket(); ++t) {
    m.SetThreadLoad(t, threads > t ? &workload::ComputeBound() : nullptr, 1.0);
  }
  rig.simulator.RunFor(Millis(200));
  return m.InstantPkgPowerW(0) + m.InstantDramPowerW(0);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fig04_core_activation", "paper Fig. 4",
      "Socket power vs active hardware threads (compute-bound) for core/"
      "uncore frequency combinations. Threads fill cores siblings-first: "
      "odd counts activate a new physical core, even counts add the "
      "HyperThread sibling.");
  bench::MachineRig rig;

  struct Combo {
    const char* label;
    double core, uncore;
  };
  const Combo combos[] = {{"1.2/1.2", 1.2, 1.2},
                          {"1.2/3.0", 1.2, 3.0},
                          {"2.6/1.2", 2.6, 1.2},
                          {"2.6/3.0", 2.6, 3.0}};

  TablePrinter table({"threads", "1.2/1.2 W", "1.2/3.0 W", "2.6/1.2 W",
                      "2.6/3.0 W"});
  double prev[4] = {0, 0, 0, 0};
  double first_core_cost[4] = {0, 0, 0, 0};
  double sibling_cost_sum[4] = {0, 0, 0, 0};
  double extra_core_cost_sum[4] = {0, 0, 0, 0};
  int sibling_n = 0, core_n = 0;
  for (int threads = 0; threads <= 24; ++threads) {
    std::vector<std::string> row = {FmtInt(threads)};
    for (int c = 0; c < 4; ++c) {
      const double p = PowerAt(rig, threads, combos[c].core, combos[c].uncore);
      row.push_back(Fmt(p, 1));
      if (threads == 1) first_core_cost[c] = p - prev[c];
      if (threads >= 2) {
        if (threads % 2 == 0) {
          sibling_cost_sum[c] += p - prev[c];
          if (c == 0) ++sibling_n;
        } else {
          extra_core_cost_sum[c] += p - prev[c];
          if (c == 0) ++core_n;
        }
      }
      prev[c] = p;
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nmean activation cost (W):\n");
  TablePrinter costs({"combo", "first core", "extra core", "HT sibling"});
  for (int c = 0; c < 4; ++c) {
    costs.AddRow({combos[c].label, Fmt(first_core_cost[c], 2),
                  Fmt(extra_core_cost_sum[c] / core_n, 2),
                  Fmt(sibling_cost_sum[c] / sibling_n, 2)});
  }
  costs.Print();
  std::printf(
      "\nShape check (paper): the first core pays for waking the uncore "
      "clock / LLC (dominant at high uncore frequencies); additional cores "
      "cost a few watts depending on the core clock; HyperThread siblings "
      "are almost free.\n");
  return 0;
}
