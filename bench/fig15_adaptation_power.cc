// Reproduces Figure 15: power consumption over time and total energy for
// the three energy-profile maintenance strategies across a sudden
// workload change (indexed -> non-indexed key-value store at t = 40 s).
// This is also the adaptation-strategy ablation from DESIGN.md.
#include <vector>

#include "adaptation_experiment.h"
#include "bench_common.h"
#include "experiment/run_matrix.h"

using namespace ecldb;

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "fig15_adaptation_power", "paper Fig. 15",
      "Workload switch at t=40 s, load fixed at 50 %, 1 Hz ECL: power over "
      "time and total energy for static / online / multiplexed profile "
      "maintenance.");
  // The three maintenance strategies are independent simulations.
  const bench::AdaptationMode modes[] = {bench::AdaptationMode::kStatic,
                                         bench::AdaptationMode::kOnline,
                                         bench::AdaptationMode::kMultiplexed};
  std::vector<bench::AdaptationResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    results[static_cast<size_t>(i)] =
        bench::RunAdaptationExperiment(modes[i]);
  });
  const auto& none = results[0];
  const auto& online = results[1];
  const auto& mux = results[2];

  {
    CsvWriter csv("bench_results/fig15_adaptation.csv",
                  {"t_s", "static_w", "online_w", "multiplexed_w"});
    for (size_t t = 0; t < none.power_w.size(); ++t) {
      csv.AddNumericRow({static_cast<double>(t + 1), none.power_w[t],
                         online.power_w[t], mux.power_w[t]});
    }
    if (csv.ok()) {
      std::printf("[series exported to bench_results/fig15_adaptation.csv]\n");
    }
  }

  TablePrinter series({"t s", "ECL static W", "ECL online W",
                       "ECL multiplexed W"});
  for (size_t t = 0; t < none.power_w.size(); t += 4) {
    series.AddRow({FmtInt(static_cast<int64_t>(t + 1)), Fmt(none.power_w[t], 1),
                   Fmt(online.power_w[t], 1), Fmt(mux.power_w[t], 1)});
  }
  series.Print();

  std::printf("\n-- total energy --\n");
  TablePrinter totals({"strategy", "energy J (120 s)", "after switch J",
                       "final best config"});
  auto row = [&](const char* name, const bench::AdaptationResult& r) {
    totals.AddRow({name, Fmt(r.energy_j, 0), Fmt(r.energy_after_switch_j, 0),
                   r.final_best_config});
  };
  row("ECL static", none);
  row("ECL online", online);
  row("ECL multiplexed", mux);
  totals.Print();

  std::printf(
      "\nShape check (paper): after the switch the static profile misleads "
      "the ECL (higher, fluctuating power); online adaptation quickly "
      "re-measures the configurations it applies; multiplexed adaptation "
      "additionally reevaluates stale configurations - it takes longer but "
      "can find a slightly more energy-efficient configuration. Static "
      "draws significantly more energy (~25 %% more power in the paper).\n");
  return 0;
}
