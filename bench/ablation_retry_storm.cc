// Ablation: the retry storm — what client backoff buys when shed work
// comes back.
//
// One standard-tier tenant on an ECL-controlled machine. A flash crowd
// pushes offered load far past capacity; pressure-driven admission sheds
// the excess. The question is what the shed clients do next:
//
//   no-retry    shed arrivals give up (the polite baseline of
//               ablation_slo_tiers). The crowd passes, pressure falls,
//               shedding stops.
//   immediate   every shed or failed arrival re-submits after a fixed
//               reconnect delay. Shed work returns instantly, so offered
//               load stays pinned above capacity even after the crowd
//               leaves: shedding feeds retries feeds pressure feeds
//               shedding — the classic metastable failure, sustained by
//               the retry loop long after its trigger is gone.
//   backoff     exponential backoff with jitter. The rejected crowd
//               decorrelates and re-offers at a decaying rate; the system
//               re-converges to the pre-crowd operating point.
//
// Scored on the post-crowd window: mean shed fraction and pressure after
// the trigger has passed separate a system that recovered from one that
// is still burning energy refusing its own retries.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiment/loadgen_trace.h"
#include "experiment/run_matrix.h"
#include "loadgen/loadgen.h"
#include "workload/kv.h"

using namespace ecldb;
using experiment::SloRunOptions;
using experiment::SloRunResult;

namespace {

constexpr SimDuration kTraceDuration = Seconds(100);
constexpr double kBaseLoad = 0.5;
constexpr double kCrowdPeak = 5.0;
constexpr SimDuration kCrowdStart = Seconds(30);
constexpr SimDuration kCrowdDuration = Seconds(20);
/// Post-crowd scoring window: the crowd is gone, only retry dynamics
/// remain.
constexpr double kScoreFromS = 65.0;

enum Arm { kNoRetry = 0, kImmediate = 1, kBackoff = 2 };

SloRunOptions MakeOptions(Arm arm) {
  SloRunOptions options;
  options.run.prime_duration = Seconds(30);
  options.run.ecl.system.interval = Millis(250);

  // A small premium tenant that is never shed keeps the latency window
  // live while the standard tier is being refused — without it a fully
  // shed entrance starves the pressure signal of completions and the
  // controller can wedge on a stale window (the same reason
  // shed_pressure_weight sits below every shed onset).
  loadgen::TenantSpec keeper;
  keeper.name = "premium";
  keeper.slo_class = loadgen::SloClass::kPremium;
  keeper.weight = 0.1;
  keeper.arrival.num_users = 100'000;
  keeper.arrival.per_user_qps = 0.01;

  loadgen::TenantSpec t;
  t.name = "standard";
  t.slo_class = loadgen::SloClass::kStandard;
  t.weight = 0.9;
  t.arrival.num_users = 1'000'000;
  t.arrival.per_user_qps = 0.01;
  loadgen::ShapeSpec crowd;
  crowd.name = "flash_crowd";
  crowd.magnitude = kCrowdPeak;
  crowd.start = kCrowdStart;
  crowd.duration = kCrowdDuration;
  t.shapes.push_back(crowd);
  options.loadgen.tenants = {keeper, t};

  // Shed early (as in ablation_slo_tiers): the crowd is far past
  // capacity, so a late onset only buys backlog.
  options.loadgen.admission.classes[static_cast<size_t>(
      loadgen::SloClass::kStandard)] = {0.0, 0.0, 0.50, 0.85};
  // Refusal is not free: every rejected attempt costs the entrance ~3 %
  // of a query (accept, parse, reject). This is the wasted work that
  // separates the arms: a hammering client re-offering its full 20-try
  // budget keeps ~0.27x capacity of pure refusal work on a controller
  // that has narrowed to serve almost nothing, while backoff's 4-try
  // budget prices out at ~0.05x — below the escape threshold — yet the
  // stub load never exceeds capacity, so the backlog (and the
  // simulation) stays bounded.
  options.loadgen.reject_cost_frac = 0.03;
  options.loadgen.duration = kTraceDuration;

  loadgen::RetryParams& retry = options.loadgen.retry;
  switch (arm) {
    case kNoRetry:
      retry.enabled = false;
      break;
    case kImmediate:
      // The naive client: hammer every reconnect RTT until served. The
      // large budget is the point — a real user mashing reload does not
      // stop after six tries, and the instant re-offer is what keeps the
      // entrance pinned.
      retry.enabled = true;
      retry.mode = loadgen::RetryParams::Mode::kImmediate;
      retry.immediate_delay = Millis(50);
      retry.max_attempts = 20;
      break;
    case kBackoff:
      // The disciplined client: bounded budget, exponential backoff,
      // jittered so the rejected crowd decorrelates.
      retry.enabled = true;
      retry.mode = loadgen::RetryParams::Mode::kBackoff;
      retry.max_attempts = 4;
      break;
  }

  options.total_load = kBaseLoad;
  options.admission_enabled = true;
  return options;
}

SloRunResult Run(Arm arm) {
  return RunSloExperiment(
      [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
        workload::KvParams params;
        params.indexed = false;
        params.batch_gets = 4'000;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      MakeOptions(arm));
}

/// Mean of a sample field over the post-crowd scoring window.
double PostCrowdMean(const SloRunResult& r,
                     double (*field)(const experiment::SloSample&)) {
  double sum = 0.0;
  int n = 0;
  for (const experiment::SloSample& s : r.series) {
    if (s.t_s < kScoreFromS) continue;
    sum += field(s);
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

/// Last sample time at which shedding was still active — "when did the
/// storm actually end". A system still shedding at trace end never
/// re-converged.
double LastShedS(const SloRunResult& r) {
  double last = 0.0;
  for (const experiment::SloSample& s : r.series) {
    if (s.shed_fraction > 0.05) last = s.t_s;
  }
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "ablation_retry_storm", "beyond the paper (fault & retry dynamics)",
      "Retry-storm metastability: shed clients that retry immediately keep "
      "the system pinned past its flash-crowd trigger; exponential backoff "
      "with jitter re-converges. Scored on the post-crowd window.");

  std::vector<SloRunResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    results[static_cast<size_t>(i)] = Run(static_cast<Arm>(i));
  });
  const char* arm_names[] = {"crowd, no retry", "crowd, immediate",
                             "crowd, backoff"};

  TablePrinter summary(
      {"arm", "arrivals", "retries", "shed", "abandoned", "completed",
       "energy J", "post-crowd shed", "post-crowd press", "shed until s"});
  for (size_t i = 0; i < results.size(); ++i) {
    const SloRunResult& r = results[i];
    summary.AddRow(
        {arm_names[i], FmtInt(r.arrivals), FmtInt(r.retries), FmtInt(r.shed),
         FmtInt(r.abandoned), FmtInt(r.completed), Fmt(r.energy_j, 0),
         Fmt(PostCrowdMean(
                 r, [](const experiment::SloSample& s) {
                   return s.shed_fraction;
                 }),
             3),
         Fmt(PostCrowdMean(
                 r, [](const experiment::SloSample& s) { return s.pressure; }),
             3),
         Fmt(LastShedS(r), 0)});
  }
  summary.Print();

  const SloRunResult& immediate = results[kImmediate];
  const SloRunResult& backoff = results[kBackoff];
  const double imm_shed = PostCrowdMean(
      immediate,
      [](const experiment::SloSample& s) { return s.shed_fraction; });
  const double back_shed = PostCrowdMean(
      backoff, [](const experiment::SloSample& s) { return s.shed_fraction; });
  std::printf(
      "\npost-crowd (t >= %.0f s, crowd gone at %.0f s): immediate retries "
      "hold shed fraction at %.2f (still shedding at t=%.0f s) while "
      "backoff decays it to %.2f (last shed at t=%.0f s) — the same "
      "trigger, the same load, only the client retry policy differs.\n",
      kScoreFromS, ToSeconds(kCrowdStart + kCrowdDuration), imm_shed,
      LastShedS(immediate), back_shed, LastShedS(backoff));
  std::printf(
      "Immediate retries amplify every refusal back into offered load "
      "(%lld retries vs %lld with backoff), sustaining the overload the "
      "shedding was meant to end; backoff spreads the same demand across "
      "time and the entrance quiets down.\n",
      static_cast<long long>(immediate.retries),
      static_cast<long long>(backoff.retries));

  // Time series of all three arms for the plots.
  CsvWriter csv("bench_results/ablation_retry_storm.csv",
                {"arm", "t_s", "offered_qps", "power_w", "latency_window_ms",
                 "pressure", "shed_fraction", "active_threads"});
  for (size_t i = 0; i < results.size(); ++i) {
    for (const experiment::SloSample& s : results[i].series) {
      csv.AddRow({arm_names[i], Fmt(s.t_s, 2), Fmt(s.offered_qps, 2),
                  Fmt(s.power_w, 3), Fmt(s.latency_window_ms, 3),
                  Fmt(s.pressure, 4), Fmt(s.shed_fraction, 4),
                  std::to_string(s.width)});
    }
  }
  if (csv.ok()) {
    std::printf(
        "[series exported to bench_results/ablation_retry_storm.csv]\n");
  }
  return 0;
}
