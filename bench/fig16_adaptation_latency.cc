// Reproduces Figure 16: query latency compliance of the three
// energy-profile maintenance strategies after the workload change.
#include <vector>

#include "adaptation_experiment.h"
#include "bench_common.h"
#include "experiment/run_matrix.h"

using namespace ecldb;

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "fig16_adaptation_latency", "paper Fig. 16",
      "Query latencies after the workload switch (t >= 40 s), 100 ms limit: "
      "static vs online vs multiplexed profile maintenance.");
  // The three maintenance strategies are independent simulations.
  const bench::AdaptationMode modes[] = {bench::AdaptationMode::kStatic,
                                         bench::AdaptationMode::kOnline,
                                         bench::AdaptationMode::kMultiplexed};
  std::vector<bench::AdaptationResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    results[static_cast<size_t>(i)] =
        bench::RunAdaptationExperiment(modes[i]);
  });
  const auto& none = results[0];
  const auto& online = results[1];
  const auto& mux = results[2];

  TablePrinter table({"strategy", "mean ms", "p99 ms", "violations %"});
  auto row = [&](const char* name, const bench::AdaptationResult& r) {
    table.AddRow({name, Fmt(r.mean_ms_after, 1), Fmt(r.p99_ms_after, 1),
                  Fmt(100.0 * r.violation_frac_after, 2)});
  };
  row("ECL static", none);
  row("ECL online", online);
  row("ECL multiplexed", mux);
  table.Print();

  std::printf(
      "\nShape check (paper): without profile adaptation the ECL mostly "
      "cannot stay within the response-time limit after the workload "
      "change (inaccurate performance levels and RTI calculations); the "
      "online and multiplexed settings stay within the limit.\n");
  return 0;
}
