// Reproduces Figure 16: query latency compliance of the three
// energy-profile maintenance strategies after the workload change.
#include "adaptation_experiment.h"
#include "bench_common.h"

using namespace ecldb;

int main() {
  bench::PrintHeader(
      "fig16_adaptation_latency", "paper Fig. 16",
      "Query latencies after the workload switch (t >= 40 s), 100 ms limit: "
      "static vs online vs multiplexed profile maintenance.");
  const auto none = bench::RunAdaptationExperiment(bench::AdaptationMode::kStatic);
  const auto online = bench::RunAdaptationExperiment(bench::AdaptationMode::kOnline);
  const auto mux =
      bench::RunAdaptationExperiment(bench::AdaptationMode::kMultiplexed);

  TablePrinter table({"strategy", "mean ms", "p99 ms", "violations %"});
  auto row = [&](const char* name, const bench::AdaptationResult& r) {
    table.AddRow({name, Fmt(r.mean_ms_after, 1), Fmt(r.p99_ms_after, 1),
                  Fmt(100.0 * r.violation_frac_after, 2)});
  };
  row("ECL static", none);
  row("ECL online", online);
  row("ECL multiplexed", mux);
  table.Print();

  std::printf(
      "\nShape check (paper): without profile adaptation the ECL mostly "
      "cannot stay within the response-time limit after the workload "
      "change (inaccurate performance levels and RTI calculations); the "
      "online and multiplexed settings stay within the limit.\n");
  return 0;
}
