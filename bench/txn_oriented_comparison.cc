// Exploratory reproduction of the paper's Section 5.3 discussion: applying
// the ECL's machinery to a TRANSACTION-ORIENTED architecture. Spinlocks
// retire instructions without doing work, tampering with the performance
// metric, and shared data access loses locality — both visible here.
#include <memory>

#include "bench_common.h"
#include "engine/engine.h"
#include "engine/txn_scheduler.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/work_profiles.h"
#include "workload/workload.h"

using namespace ecldb;

namespace {

struct Point {
  double ops_per_s = 0.0;
  double ginstr_per_s = 0.0;
  double instr_per_op = 0.0;
  double spin = 0.0;
};

/// Saturates `threads` active hardware threads (filled siblings-first on
/// both sockets) for one second and measures useful throughput vs
/// instructions retired.
Point MeasureTxnOriented(int threads_per_socket) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Database db(machine.topology().total_threads());
  engine::TxnScheduler txn(&sim, &machine, &db, engine::TxnSchedulerParams{});
  const hwsim::Topology& topo = machine.topology();
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    machine.ApplySocketConfig(
        s, hwsim::SocketConfig::FirstThreads(topo, threads_per_socket, 2.6, 3.0));
  }
  // Keep the queue saturated with short transactions.
  auto feed = [&] {
    while (txn.submitted() - txn.completed() < 4000) {
      engine::QuerySpec spec;
      spec.profile = &workload::TatpIndexed();
      spec.work.push_back({0, 4000.0});
      spec.work.push_back({1, 4000.0});
      txn.Submit(spec);
    }
  };
  for (int i = 0; i < 10; ++i) {
    feed();
    sim.RunFor(Millis(20));
  }
  const int64_t c0 = txn.completed();
  const uint64_t i0 =
      machine.ReadSocketInstructions(0) + machine.ReadSocketInstructions(1);
  for (int i = 0; i < 50; ++i) {
    feed();
    sim.RunFor(Millis(20));
  }
  const double seconds = 1.0;
  Point p;
  p.ops_per_s = static_cast<double>(txn.completed() - c0) * 8000.0 / seconds;
  p.ginstr_per_s = static_cast<double>(machine.ReadSocketInstructions(0) +
                                       machine.ReadSocketInstructions(1) - i0) /
                   1e9 / seconds;
  p.instr_per_op = p.ops_per_s > 0.0 ? p.ginstr_per_s * 1e9 / p.ops_per_s : 0.0;
  p.spin = txn.last_spin_fraction();
  return p;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "txn_oriented_comparison", "paper Section 5.3 (exploratory)",
      "The ECL's performance metric (instructions retired) on a "
      "transaction-oriented architecture: spinlock waiting retires "
      "instructions without completing work, so the metric decouples from "
      "useful throughput as more threads contend.");

  TablePrinter table({"threads/socket", "useful Mops/s", "Ginstr/s",
                      "instr per op", "spin frac"});
  double best_ops = 0.0;
  int best_threads = 0;
  double instr_at_best = 0.0, instr_at_24 = 0.0;
  double ops_at_24 = 0.0;
  for (int threads : {2, 4, 8, 12, 16, 20, 24}) {
    const Point p = MeasureTxnOriented(threads);
    table.AddRow({FmtInt(threads), Fmt(p.ops_per_s / 1e6, 1),
                  Fmt(p.ginstr_per_s, 2), Fmt(p.instr_per_op, 0),
                  Fmt(p.spin, 2)});
    if (p.ops_per_s > best_ops) {
      best_ops = p.ops_per_s;
      best_threads = threads;
      instr_at_best = p.ginstr_per_s;
    }
    if (threads == 24) {
      instr_at_24 = p.ginstr_per_s;
      ops_at_24 = p.ops_per_s;
    }
  }
  table.Print();

  std::printf(
      "\nuseful throughput peaks at %d threads/socket (%.1f Mops/s), yet "
      "instructions retired keep%s growing (%.2f -> %.2f Ginstr/s at 24 "
      "threads while useful work drops to %.1f Mops/s).\n",
      best_threads, best_ops / 1e6, instr_at_24 > instr_at_best ? "" : " (almost)",
      instr_at_best, instr_at_24, ops_at_24 / 1e6);
  std::printf(
      "An instructions-retired energy profile would rank the contended "
      "all-on configuration far too high - the paper's reason why applying "
      "the ECL to transaction-oriented systems 'requires additional "
      "research' (spinlocks tamper with the performance metric; "
      "cross-socket interference forces frequent profile adaptation).\n");
  return 0;
}
