// Ablation: the paper's elasticity extensions (Section 3) vs the ORIGINAL
// data-oriented architecture with a static worker-partition binding.
//
// Two pathologies of the static binding motivate the extensions:
//  (1) "Static Mapping": when the ECL puts hardware threads to sleep,
//      their partitions become unavailable - queries to them starve.
//  (2) "Load Balancing": skewed partition access cannot be balanced; hot
//      partitions back up while other workers idle.
#include <memory>

#include "bench_common.h"
#include "ecl/baseline.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

using namespace ecldb;

namespace {

struct Outcome {
  int64_t submitted = 0;
  int64_t completed = 0;
  double p99_ms = 0.0;
  double avg_power_w = 0.0;
};

Outcome Run(bool elastic, bool use_ecl, double zipf_theta, double load) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::EngineParams ep;
  ep.scheduler.static_binding = !elastic;
  engine::Engine engine(&sim, &machine, ep);
  workload::KvParams kvp;
  kvp.indexed = false;
  kvp.zipf_theta = zipf_theta;
  workload::KvWorkload kv(&engine, kvp);
  const double cap = workload::BaselineCapacityQps(machine.params(), kv);

  ecl::BaselineController baseline(&machine);
  std::unique_ptr<ecl::EnergyControlLoop> loop;
  if (use_ecl) {
    loop = std::make_unique<ecl::EnergyControlLoop>(&sim, &engine,
                                                    ecl::EclParams{});
    loop->Start();
    engine.scheduler().SetSyntheticLoad(&kv.profile());
    sim.RunFor(Seconds(30));
    engine.scheduler().SetSyntheticLoad(nullptr);
  } else {
    baseline.Start();
  }
  engine.latency().ResetRunStats();

  workload::ConstantProfile profile(load, Seconds(30));
  workload::DriverParams dp;
  dp.capacity_qps = cap;
  workload::LoadDriver driver(&sim, &engine, &kv, &profile, dp);
  const double e0 = machine.TotalEnergyJoules();
  driver.Start();
  sim.RunFor(Seconds(30));
  const double energy = machine.TotalEnergyJoules() - e0;
  sim.RunFor(Seconds(3));  // drain

  Outcome o;
  o.submitted = driver.submitted();
  o.completed = engine.latency().completed();
  o.p99_ms = engine.latency().all().Percentile(99);
  o.avg_power_w = energy / 30.0;
  return o;
}

void PrintRow(TablePrinter& t, const char* name, const Outcome& o) {
  t.AddRow({name, FmtInt(o.submitted), FmtInt(o.completed), Fmt(o.p99_ms, 1),
            Fmt(o.avg_power_w, 1)});
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ablation_elasticity", "paper Section 3 (design ablation)",
      "Elastic worker-partition mapping vs the original static binding, "
      "non-indexed key-value store.");

  std::printf("\n-- uniform partition access, 30 %% load --\n");
  TablePrinter t1({"architecture", "submitted", "completed", "p99 ms",
                   "avg power W"});
  PrintRow(t1, "elastic + ECL", Run(true, true, 0.0, 0.3));
  PrintRow(t1, "static  + ECL", Run(false, true, 0.0, 0.3));
  PrintRow(t1, "static  + all-on (no energy control)",
           Run(false, false, 0.0, 0.3));
  t1.Print();

  std::printf("\n-- zipf(0.9)-skewed partition access, 30 %% load --\n");
  TablePrinter t2({"architecture", "submitted", "completed", "p99 ms",
                   "avg power W"});
  PrintRow(t2, "elastic + ECL", Run(true, true, 0.9, 0.3));
  PrintRow(t2, "static  + ECL", Run(false, true, 0.9, 0.3));
  PrintRow(t2, "static  + all-on (no energy control)",
           Run(false, false, 0.9, 0.3));
  t2.Print();

  std::printf(
      "\nWith the static binding, the partitions of sleeping threads become "
      "unavailable: queries starve (completed << submitted) as soon as the "
      "ECL powers threads down. The only safe static configuration keeps "
      "every thread on - forfeiting the energy savings the elastic "
      "architecture achieves. Under skew the elastic mapping keeps every "
      "partition served and still saves energy, at a latency cost: a "
      "partition remains the unit of parallelism in the data-oriented "
      "architecture, so a single hot partition is always drained by one "
      "worker at a time (with RTI idling in between).\n");
  return 0;
}
