// Reproduces Figure 13: load adaptation and query latency for the spike
// load profile (non-indexed key-value store), baseline vs ECL at 1 Hz and
// 2 Hz base frequency.
#include <memory>

#include "bench_common.h"
#include "experiment/experiment.h"
#include "experiment/run_matrix.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;
using experiment::ControlMode;
using experiment::RunOptions;
using experiment::RunResult;

namespace {

experiment::WorkloadFactory Factory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

RunResult Run(ControlMode mode, SimDuration ecl_interval) {
  workload::SpikeProfile profile;  // full 3 minutes, like the paper
  RunOptions options;
  options.mode = mode;
  options.ecl.socket.interval = ecl_interval;
  options.sample_period = Seconds(2);
  return RunLoadExperiment(Factory(), profile, options);
}

double OverloadSeconds(const RunResult& r, double limit_ms) {
  double seconds = 0.0;
  for (const auto& s : r.series) {
    if (s.latency_window_ms > limit_ms) seconds += 2.0;
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "fig13_spike_profile", "paper Fig. 13 (a)+(b)",
      "Spike load profile over 3 minutes, non-indexed key-value store, "
      "100 ms latency limit: power over time and latency statistics for "
      "the baseline and the ECL at 1 Hz / 2 Hz.");

  // The three arms are independent simulations; run them concurrently.
  std::vector<RunResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    switch (i) {
      case 0: results[0] = Run(ControlMode::kBaseline, Seconds(1)); break;
      case 1: results[1] = Run(ControlMode::kEcl, Seconds(1)); break;
      default: results[2] = Run(ControlMode::kEcl, Millis(500)); break;
    }
  });
  const RunResult& base = results[0];
  const RunResult& ecl1 = results[1];
  const RunResult& ecl2 = results[2];
  bench::ExportSeries("fig13_baseline", base);
  bench::ExportSeries("fig13_ecl_1hz", ecl1);
  bench::ExportSeries("fig13_ecl_2hz", ecl2);

  std::printf("\n-- (a) load and power over time (sampled every 2 s) --\n");
  TablePrinter series({"t s", "load kQps", "baseline W", "ECL 1Hz W",
                       "ECL 2Hz W"});
  for (size_t i = 0; i < base.series.size(); i += 3) {
    series.AddRow({Fmt(base.series[i].t_s, 0),
                   Fmt(base.series[i].offered_qps / 1000.0, 1),
                   Fmt(base.series[i].rapl_power_w, 1),
                   Fmt(ecl1.series[i].rapl_power_w, 1),
                   Fmt(ecl2.series[i].rapl_power_w, 1)});
  }
  series.Print();

  std::printf("\n-- (b) query latencies (limit 100 ms) --\n");
  TablePrinter lat({"run", "mean ms", "p95 ms", "p99 ms", "max ms",
                    "viol %", "overload s", "energy J", "saving %"});
  auto row = [&](const char* name, const RunResult& r) {
    lat.AddRow({name, Fmt(r.mean_ms, 1), Fmt(r.p95_ms, 1), Fmt(r.p99_ms, 1),
                Fmt(r.max_ms, 1), Fmt(100.0 * r.violation_frac, 2),
                Fmt(OverloadSeconds(r, 100.0), 0), Fmt(r.energy_j, 0),
                Fmt(experiment::SavingsPercent(base, r), 1)});
  };
  row("baseline", base);
  row("ECL 1 Hz", ecl1);
  row("ECL 2 Hz", ecl2);
  lat.Print();

  std::printf(
      "\nShape check (paper): the ECL never draws more power than the "
      "baseline; energy proportionality is nearly perfect above ~50 %% "
      "load; the baseline resides in the overload state longer than the "
      "ECL (its all-on configuration adds memory-controller contention); "
      "latency violations occur only around the overload phase; 2 Hz only "
      "slightly improves latencies.\n");
  return 0;
}
