// Reproduces Figure 7: behavior of the energy-efficient turbo (EET) under
// different energy-performance bias (EPB) settings, for a compute-bound
// and a memory-bound workload.
#include "bench_common.h"

using namespace ecldb;

namespace {

void RunScenario(const char* title, hwsim::EpbSetting epb,
                 const hwsim::WorkProfile& work) {
  std::printf("\n-- %s --\n", title);
  bench::MachineRig rig;
  hwsim::Machine& m = rig.machine;
  const hwsim::Topology& topo = m.topology();
  m.SetEpb(epb);
  // Start all cores at the minimum frequency under full load.
  m.ApplySocketConfig(0, hwsim::SocketConfig::AllOn(topo, 1.2, 3.0));
  for (int t = 0; t < topo.threads_per_socket(); ++t) m.SetThreadLoad(t, &work, 1.0);

  TablePrinter table({"time ms", "eff core GHz", "pkg W", "Ginstr/s"});
  uint64_t prev_instr = 0;
  auto sample = [&](SimTime t_ms) {
    const uint64_t instr = m.ReadSocketInstructions(0);
    table.AddRow({FmtInt(t_ms), Fmt(m.effective_config().sockets[0].core_freq_ghz[0], 1),
                  Fmt(m.InstantPkgPowerW(0), 1),
                  Fmt(static_cast<double>(instr - prev_instr) / 0.25e9, 2)});
    prev_instr = instr;
  };
  // 1 s at 1.2 GHz, then request turbo (the "frequency change" of Fig. 7).
  for (int i = 1; i <= 4; ++i) {
    rig.simulator.RunFor(Millis(250));
    sample(i * 250);
  }
  m.ApplySocketConfig(0, hwsim::SocketConfig::AllOn(topo, 3.1, 3.0));
  for (int i = 5; i <= 12; ++i) {
    rig.simulator.RunFor(Millis(250));
    sample(i * 250);
  }
  table.Print();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fig07_eet_epb", "paper Fig. 7",
      "All cores under load start at 1.2 GHz; at t=1000 ms software requests "
      "the turbo frequency. Instructions retired are per 250 ms window.");
  RunScenario("(a) compute-bound, EPB powersave/balanced",
              hwsim::EpbSetting::kBalanced, workload::ComputeBound());
  RunScenario("(b) compute-bound, EPB performance",
              hwsim::EpbSetting::kPerformance, workload::ComputeBound());
  RunScenario("(c) memory-bound, EPB powersave/balanced",
              hwsim::EpbSetting::kBalanced, workload::MemoryScan());
  std::printf(
      "\nShape check (paper): with powersave/balanced EPB the CPU sticks at "
      "2.6 GHz for ~1 s before granting turbo; with performance EPB turbo is "
      "immediate. For the memory-bound workload the turbo grant draws extra "
      "power WITHOUT raising instructions retired - a bad decision that "
      "motivates explicit energy control.\n");
  return 0;
}
