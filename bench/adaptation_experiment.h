#ifndef ECLDB_BENCH_ADAPTATION_EXPERIMENT_H_
#define ECLDB_BENCH_ADAPTATION_EXPERIMENT_H_

// Shared runner for the Figure 15/16 energy-profile adaptation experiment:
// the workload suddenly switches from the indexed to the non-indexed
// key-value benchmark at t = 40 s (a major workload change); the database
// load is fixed to 50 %; the three ECL settings differ in how the energy
// profile is maintained (static / online / multiplexed).

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

namespace ecldb::bench {

enum class AdaptationMode { kStatic, kOnline, kMultiplexed };

inline const char* AdaptationName(AdaptationMode mode) {
  switch (mode) {
    case AdaptationMode::kStatic:
      return "ECL static";
    case AdaptationMode::kOnline:
      return "ECL online";
    case AdaptationMode::kMultiplexed:
      return "ECL multiplexed";
  }
  return "?";
}

struct AdaptationResult {
  std::vector<double> power_w;      // sampled once per second
  double energy_j = 0.0;            // total over the 120 s run
  double energy_after_switch_j = 0.0;
  double mean_ms_after = 0.0;       // latency stats after the switch
  double p99_ms_after = 0.0;
  double violation_frac_after = 0.0;
  std::string final_best_config;
};

inline AdaptationResult RunAdaptationExperiment(AdaptationMode mode) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  workload::KvParams pi;
  pi.indexed = true;
  workload::KvWorkload indexed(&engine, pi);
  workload::KvParams ps;
  ps.indexed = false;
  workload::KvWorkload scan(&engine, ps);

  ecl::EclParams params;
  ecl::EnergyControlLoop loop(&sim, &engine, params);
  loop.Start();
  // Prime the profiles on the indexed workload (all modes start with an
  // accurate profile of the OLD workload).
  engine.scheduler().SetSyntheticLoad(&indexed.profile());
  sim.RunFor(Seconds(30));
  engine.scheduler().SetSyntheticLoad(nullptr);
  switch (mode) {
    case AdaptationMode::kStatic:
      loop.SetAdaptation(false, false);
      break;
    case AdaptationMode::kOnline:
      loop.SetAdaptation(true, false);
      break;
    case AdaptationMode::kMultiplexed:
      loop.SetAdaptation(true, true);
      break;
  }
  engine.latency().ResetRunStats();

  // Phase 1: indexed workload at 50 % load for 40 s.
  const double cap_indexed =
      workload::BaselineCapacityQps(machine.params(), indexed);
  workload::ConstantProfile phase1(0.5, Seconds(40));
  workload::DriverParams dp1;
  dp1.capacity_qps = cap_indexed;
  workload::LoadDriver driver1(&sim, &engine, &indexed, &phase1, dp1);

  // Phase 2: sudden switch to the non-indexed workload for 80 s.
  const double cap_scan = workload::BaselineCapacityQps(machine.params(), scan);
  workload::ConstantProfile phase2(0.5, Seconds(80));
  workload::DriverParams dp2;
  dp2.capacity_qps = cap_scan;
  workload::LoadDriver driver2(&sim, &engine, &scan, &phase2, dp2);

  AdaptationResult result;
  const double e0 = machine.TotalEnergyJoules();
  driver1.Start();
  double e_at_switch = 0.0;
  double e_prev = e0;
  for (int t = 1; t <= 120; ++t) {
    if (t == 40) {
      driver2.Start();
      e_at_switch = machine.TotalEnergyJoules();
      engine.latency().ResetRunStats();
    }
    sim.RunFor(Seconds(1));
    // Per-second average power (instantaneous reads alias with RTI).
    const double e = machine.TotalEnergyJoules();
    result.power_w.push_back(e - e_prev);
    e_prev = e;
  }
  result.energy_j = machine.TotalEnergyJoules() - e0;
  result.energy_after_switch_j = machine.TotalEnergyJoules() - e_at_switch;
  result.mean_ms_after = engine.latency().all().Mean();
  result.p99_ms_after = engine.latency().all().Percentile(99);
  result.violation_frac_after = engine.latency().all().FractionAbove(
      params.system.latency_limit_ms);
  const profile::EnergyProfile& prof = loop.socket(0).profile();
  if (prof.MostEfficientIndex() >= 0) {
    const profile::Configuration& best =
        prof.config(prof.MostEfficientIndex());
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%2dthr @ %.1fGHz unc %.1f",
                  best.hw.ActiveThreadCount(),
                  best.hw.MeanActiveCoreFreq(machine.topology()),
                  best.hw.uncore_freq_ghz);
    result.final_best_config = buf;
  }
  return result;
}

}  // namespace ecldb::bench

#endif  // ECLDB_BENCH_ADAPTATION_EXPERIMENT_H_
