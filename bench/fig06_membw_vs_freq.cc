// Reproduces Figure 6: memory bandwidth and power draw for different core
// and uncore frequency settings (all cores active, column scan).
#include "bench_common.h"

using namespace ecldb;

int main() {
  bench::PrintHeader(
      "fig06_membw_vs_freq", "paper Fig. 6",
      "Socket scan bandwidth (GB/s) and package+DRAM power (W) over the "
      "core x uncore frequency grid; all 24 hardware threads scanning.");
  bench::MachineRig rig;
  hwsim::Machine& m = rig.machine;
  const hwsim::Topology& topo = m.topology();

  const double cores[] = {1.2, 1.9, 2.6};
  TablePrinter table({"uncore GHz", "bw@core1.2", "bw@core1.9", "bw@core2.6",
                      "W@core1.2", "W@core1.9", "W@core2.6"});
  double bw_low_core_max_uncore = 0.0;
  double bw_peak = 0.0;
  for (double uncore = 1.2; uncore <= 3.01; uncore += 0.3) {
    std::vector<std::string> row = {Fmt(uncore, 1)};
    std::vector<std::string> watts;
    for (double core : cores) {
      m.ApplySocketConfig(0, hwsim::SocketConfig::AllOn(topo, core, uncore));
      for (int t = 0; t < topo.threads_per_socket(); ++t) {
        m.SetThreadLoad(t, &workload::MemoryScan(), 1.0);
      }
      rig.simulator.RunFor(Millis(200));
      const double bw = m.SocketBandwidthGbps(0);
      row.push_back(Fmt(bw, 1));
      watts.push_back(Fmt(m.InstantPkgPowerW(0) + m.InstantDramPowerW(0), 1));
      if (core == 1.2 && uncore >= 2.99) bw_low_core_max_uncore = bw;
      bw_peak = std::max(bw_peak, bw);
    }
    for (auto& w : watts) row.push_back(std::move(w));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nShape check (paper): bandwidth depends on the uncore clock, not "
      "the core clock; the lowest core frequency (1.2 GHz) reaches %.0f %% "
      "of the peak bandwidth as long as the uncore runs at 3.0 GHz.\n",
      100.0 * bw_low_core_max_uncore / bw_peak);
  return 0;
}
