// Ablation: cluster-scale energy control — whole-node power-down on top
// of the per-node ECL stacks, vs the same cluster with node placement
// frozen, plus a wimpy-cluster energy-proportionality comparison.
//
// Inside one box the ECL bottoms out at the package-sleep floor; the
// platform overhead (board, fans, NIC, PSU static) stays up as long as
// the node is powered. The cluster tier consolidates partitions off the
// least-loaded node and powers it down — the only lever that removes the
// platform overhead — and wakes it boot-latency-early when pressure
// returns. The energy-vs-load curve shows how much closer that moves an
// N-node rack to energy proportionality, and where a cluster of wimpy
// microserver nodes sits on the same curve.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiment/cluster_trace.h"
#include "experiment/run_matrix.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;
using experiment::ClusterRunOptions;
using experiment::ClusterRunResult;

namespace {

constexpr int kNodes = 4;
constexpr SimDuration kTraceDuration = Seconds(180);
constexpr SimDuration kCurveDuration = Seconds(90);
const double kCurveLoads[] = {0.1, 0.6};

enum class Fleet { kBrawny, kWimpy };

ClusterRunOptions MakeOptions(Fleet fleet, bool cluster_ecl) {
  ClusterRunOptions options;
  hwsim::ClusterNodeParams node;
  if (fleet == Fleet::kWimpy) {
    node.machine = hwsim::MachineParams::Wimpy();
    node.power = hwsim::NodePowerParams::Wimpy();
  }
  options.cluster = hwsim::ClusterParams::Homogeneous(kNodes, node);
  options.cluster_ecl.enabled = cluster_ecl;
  // The trace compresses a diurnal cycle into three minutes, so every
  // policy timescale scales down with it: a real rack would tick every
  // tens of seconds and dwell for tens of minutes against hour-long
  // troughs. What must NOT scale is the boot latency — the 20 s boot
  // stays a large fraction of the compressed night, which is exactly
  // the regime that makes the wake hysteresis earn its keep.
  options.cluster_ecl.interval = Seconds(1);
  options.cluster_ecl.migrations_per_tick = 12;
  options.cluster_ecl.spread_migrations_per_tick = 24;
  options.cluster_ecl.post_migration_hold = Seconds(10);
  options.cluster_ecl.min_on_time = Seconds(30);
  options.engine.migration.min_shard_bytes = 64.0 * (1 << 20);
  options.node_ecl.socket.exclude_poll_instructions = true;
  return options;
}

ClusterRunResult Run(Fleet fleet, bool cluster_ecl,
                     const workload::LoadProfile& profile) {
  return RunClusterExperiment(
      [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
        workload::KvParams params;
        params.indexed = false;
        // Key space scales with the node count so a shard (and therefore
        // one whole-shard scan) costs the same as on a single machine —
        // the cluster serves N boxes worth of data, not one box's data
        // sliced N ways.
        params.num_keys = 16'777'216 * kNodes;
        // Fatter queries keep the modeled work identical per unit load
        // while cutting the event count (4 machines multiply the event
        // rate; the capacity baseline scales with the per-query cost).
        params.batch_gets = 16'000;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      profile, MakeOptions(fleet, cluster_ecl));
}

int MinNodesOn(const ClusterRunResult& r) {
  int nodes = kNodes;
  for (const experiment::ClusterSample& s : r.series) {
    nodes = std::min(nodes, s.nodes_on);
  }
  return nodes;
}

double JoulesPerKquery(const ClusterRunResult& r) {
  return r.completed > 0 ? r.energy_j / (static_cast<double>(r.completed) / 1e3)
                         : 0.0;
}

std::string RowLabel(Fleet fleet, bool on) {
  std::string label = fleet == Fleet::kWimpy ? "wimpy" : "brawny";
  label += on ? " + cluster ECL" : " (node ECLs only)";
  return label;
}

void AddRow(TablePrinter& table, const std::string& label,
            const std::string& load, const ClusterRunResult& r) {
  table.AddRow({label, load, Fmt(r.energy_j, 0), Fmt(r.avg_power_w, 1),
                FmtInt(MinNodesOn(r)), FmtInt(r.node_migrations),
                FmtInt(r.power_downs), FmtInt(r.wakes), FmtInt(r.completed),
                Fmt(JoulesPerKquery(r), 2), Fmt(r.p99_ms, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "ablation_cluster", "beyond the paper (cluster tier)",
      "Whole-node power-down via the cluster ECL on a 4-node rack: diurnal "
      "trace (net saving at equal completions) plus the energy-vs-load "
      "curve for brawny Haswell-EP nodes and wimpy microserver nodes.");

  // A day/night cycle compressed into three minutes: busy day, gradual
  // evening ramp-down, a long night trough (long relative to the 20 s
  // boot — as a real night is), then a morning ramp the reactive wake
  // can lead before full day load returns.
  const workload::StepProfile trace(
      {{Seconds(0), 0.5},
       {Seconds(50), 0.25},
       {Seconds(60), 0.06},
       {Seconds(130), 0.3},
       {Seconds(145), 0.5}},
      kTraceDuration);
  std::vector<std::unique_ptr<workload::ConstantProfile>> curve;
  for (double load : kCurveLoads) {
    curve.push_back(
        std::make_unique<workload::ConstantProfile>(load, kCurveDuration));
  }

  // Arms 0-1: diurnal trace, brawny, cluster ECL off/on. Remaining arms:
  // the load curve — brawny-off, brawny-on, wimpy-on at each load point.
  const int kArms = 2 + 3 * static_cast<int>(curve.size());
  std::vector<ClusterRunResult> results(static_cast<size_t>(kArms));
  experiment::RunMatrix(kArms, jobs, [&](int i) {
    ClusterRunResult& out = results[static_cast<size_t>(i)];
    if (i < 2) {
      out = Run(Fleet::kBrawny, i == 1, trace);
      return;
    }
    const int point = (i - 2) % static_cast<int>(curve.size());
    const int config = (i - 2) / static_cast<int>(curve.size());
    const Fleet fleet = config == 2 ? Fleet::kWimpy : Fleet::kBrawny;
    out = Run(fleet, config >= 1, *curve[static_cast<size_t>(point)]);
  });

  TablePrinter table({"configuration", "load", "total J", "avg W",
                      "min nodes on", "node migs", "power downs", "wakes",
                      "completed", "J/kquery", "p99 ms"});
  AddRow(table, RowLabel(Fleet::kBrawny, false), "diurnal", results[0]);
  AddRow(table, RowLabel(Fleet::kBrawny, true), "diurnal", results[1]);
  for (int config = 0; config < 3; ++config) {
    for (size_t point = 0; point < curve.size(); ++point) {
      const Fleet fleet = config == 2 ? Fleet::kWimpy : Fleet::kBrawny;
      AddRow(table, RowLabel(fleet, config >= 1), Fmt(kCurveLoads[point], 1),
             results[2 + static_cast<size_t>(config) * curve.size() + point]);
    }
  }
  table.Print();

  const ClusterRunResult& off = results[0];
  const ClusterRunResult& on = results[1];
  std::printf(
      "\ndiurnal trace: %.1f %% energy saving (%.0f J -> %.0f J) at "
      "completions %lld vs %lld; node migrations %lld (%lld cancelled), "
      "power downs %lld, wakes %lld, remote sends %lld, stale node "
      "forwards %lld\n",
      off.energy_j > 0.0 ? 100.0 * (off.energy_j - on.energy_j) / off.energy_j
                         : 0.0,
      off.energy_j, on.energy_j, static_cast<long long>(off.completed),
      static_cast<long long>(on.completed),
      static_cast<long long>(on.node_migrations),
      static_cast<long long>(on.cancelled_migrations),
      static_cast<long long>(on.power_downs), static_cast<long long>(on.wakes),
      static_cast<long long>(on.remote_sends),
      static_cast<long long>(on.stale_forwards));
  const ClusterRunResult& brawny_pt = results[2 + curve.size() + 1];
  const ClusterRunResult& wimpy_pt = results[2 + 2 * curve.size() + 1];
  std::printf(
      "wimpy vs brawny at 0.6 load: %.2f vs %.2f J/kquery (each relative "
      "to its own capacity; the wimpy rack trades peak capacity for a "
      "near-proportional idle).\n",
      JoulesPerKquery(wimpy_pt), JoulesPerKquery(brawny_pt));
  std::printf(
      "\nThe per-node ECLs bottom out at package sleep plus the platform "
      "overhead; only whole-node power-down removes the latter. The "
      "cluster tier drains the least-loaded node through node-scope live "
      "migration (drain -> copy over the NIC -> epoch-bumped rehome), "
      "powers it down, and wakes it boot-latency-early on rising "
      "pressure.\n");

  // Energy-vs-load curve for the plots.
  CsvWriter csv("bench_results/ablation_cluster.csv",
                {"config", "load", "energy_j", "avg_power_w", "completed",
                 "j_per_kquery", "min_nodes_on"});
  for (int config = 0; config < 3; ++config) {
    for (size_t point = 0; point < curve.size(); ++point) {
      const ClusterRunResult& r =
          results[2 + static_cast<size_t>(config) * curve.size() + point];
      const Fleet fleet = config == 2 ? Fleet::kWimpy : Fleet::kBrawny;
      csv.AddRow({RowLabel(fleet, config >= 1), Fmt(kCurveLoads[point], 1),
                  Fmt(r.energy_j, 0), Fmt(r.avg_power_w, 1),
                  FmtInt(r.completed), Fmt(JoulesPerKquery(r), 2),
                  FmtInt(MinNodesOn(r))});
    }
  }
  if (csv.ok()) {
    std::printf("[curve exported to bench_results/ablation_cluster.csv]\n");
  }
  return 0;
}
