// Reproduces Figure 9: energy profiles of the compute-bound workload for
// three configuration-generator parameter settings, plus the generator
// granularity study (this doubles as the profile-granularity ablation
// called out in DESIGN.md).
#include "bench_common.h"

using namespace ecldb;

namespace {

void RunSetting(const char* title, const char* csv_name,
                const profile::GeneratorParams& params) {
  bench::MachineRig rig;
  profile::ConfigGenerator gen(rig.machine.topology(), rig.machine.freqs());
  const int group = gen.GroupSizeFor(params);
  profile::EnergyProfile profile(gen.Generate(params));
  profile::ProfileEvaluator eval(&rig.simulator, &rig.machine, 0);
  eval.EvaluateAll(&profile, workload::ComputeBound(), profile::EvaluatorParams{});

  std::printf("\n== %s ==\n", title);
  std::printf("configurations: %d (thread group size %d, idle excluded: %d)\n",
              profile.size(), group, profile.size() - 1);
  bench::ExportProfileScatter(csv_name, rig, profile);
  bench::PrintProfileSkyline(rig, profile, title);
  // Evaluation cost at runtime: each configuration needs apply+measure.
  std::printf("full reevaluation cost: %.1f s of multiplexed adaptation\n",
              (profile.size() - 1) * ToSeconds(Millis(101)));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fig09_profile_generator", "paper Fig. 9 (a)-(c)",
      "Energy profiles for the compute-bound workload under three "
      "configuration-generator settings; c_max = 256.");

  profile::GeneratorParams a;  // f_core=4, f_uncore=3, mixed off
  RunSetting("(a) f_core=4, f_uncore=3, mixed=off", "fig09a_compute", a);

  profile::GeneratorParams b = a;
  b.n_core_freqs = 7;
  RunSetting("(b) f_core=7, f_uncore=3, mixed=off", "fig09b_compute", b);

  profile::GeneratorParams c = a;
  c.mixed_core_freqs = true;
  RunSetting("(c) f_core=4, f_uncore=3, mixed=on", "fig09c_compute", c);

  std::printf(
      "\nShape check (paper): setting (a) already covers the important "
      "supporting points - (b) and (c) add configurations (costlier to "
      "maintain at runtime) without significantly improving the skyline. "
      "The lowest core and uncore frequencies are the most energy-"
      "efficient for this workload until their performance is exhausted.\n");
  return 0;
}
