// Reproduces Appendix Figures 17-20: energy profiles for the TATP and SSB
// benchmarks, each fully indexed and non-indexed.
#include "bench_common.h"

using namespace ecldb;

int main() {
  bench::PrintHeader(
      "fig17_20_benchmark_profiles", "paper Figs. 17-20 (appendix)",
      "Energy profiles for TATP and SSB (Q2.1 as representative), indexed "
      "and non-indexed; f_core=4, f_uncore=3, mixed=off.");

  struct Entry {
    const char* title;
    const hwsim::WorkProfile* work;
  };
  const Entry entries[] = {
      {"Fig. 17: indexed TATP", &workload::TatpIndexed()},
      {"Fig. 18: non-indexed TATP", &workload::TatpNonIndexed()},
      {"Fig. 19: indexed SSB (Q2.1)", &workload::SsbIndexed()},
      {"Fig. 20: non-indexed SSB (Q2.1)", &workload::SsbNonIndexed()},
  };
  for (const Entry& e : entries) {
    bench::MachineRig rig;
    profile::EnergyProfile profile = bench::ConductProfile(rig, *e.work);
    std::printf("\n== %s ==\n", e.title);
    bench::ExportProfileScatter(
        (std::string("fig17_20_") + e.work->name).c_str(), rig, profile);
    bench::PrintProfileSkyline(rig, profile, e.title);
    const profile::Configuration& opt =
        profile.config(profile.MostEfficientIndex());
    std::printf("most energy-efficient: %s\n",
                bench::Describe(rig.machine.topology(), opt).c_str());
  }

  std::printf(
      "\nShape check (paper): the indexed TATP and SSB profiles resemble "
      "the compute-intensive profile (Fig. 9a) with low memory-controller "
      "contention; the non-indexed variants share the low-uncore cluster "
      "of the memory-intensive profile (Fig. 10a); SSB requires a higher "
      "uncore clock than TATP because of the data shipped between "
      "partitions.\n");
  return 0;
}
