// Reproduces Figure 12: the ECL's startup meta calibration — deviation of
// power measurements as the apply and measure times are shortened.
#include "bench_common.h"
#include "ecl/meta_calibration.h"

using namespace ecldb;

int main() {
  bench::PrintHeader(
      "fig12_meta_calibration", "paper Fig. 12",
      "Meta calibration: reference measurement with generous times, then "
      "the measure window and the apply settle time are shortened while "
      "tracking the deviation (switching highest <-> lowest configuration).");
  bench::MachineRig rig;
  ecl::MetaCalibration cal(&rig.simulator, &rig.machine, 0);
  const ecl::MetaCalibrationResult result =
      cal.Run(workload::ComputeBound(), ecl::MetaCalibrationParams{});

  std::printf("\n-- measure-time sweep (apply time at reference) --\n");
  TablePrinter mt({"measure ms", "deviation %"});
  for (const auto& p : result.measure_sweep) {
    mt.AddRow({Fmt(ToMillis(p.duration), 0), Fmt(100.0 * p.deviation, 2)});
  }
  mt.Print();

  std::printf("\n-- apply-time sweep (measure time as chosen) --\n");
  TablePrinter at({"apply ms", "deviation %"});
  for (const auto& p : result.apply_sweep) {
    at.AddRow({Fmt(ToMillis(p.duration), 0), Fmt(100.0 * p.deviation, 2)});
  }
  at.Print();

  std::printf("\nchosen: measure %.0f ms, apply %.0f ms\n",
              ToMillis(result.measure_time), ToMillis(result.apply_time));
  std::printf(
      "\nShape check (paper): applying a configuration is accurate even at "
      "1 ms (C-/P-state transitions cost microseconds); measuring the RAPL "
      "counters becomes increasingly inaccurate below ~100 ms, which the "
      "paper identifies as the best accuracy/speed trade-off.\n");
  return 0;
}
