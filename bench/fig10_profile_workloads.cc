// Reproduces Figure 10: energy profiles for the memory-bound, atomic-
// contention and shared-hash-table workloads, including the ruling zones
// and the savings/response headroom vs the race-to-idle baseline.
#include "bench_common.h"

using namespace ecldb;

namespace {

void RunWorkload(const char* title, const hwsim::WorkProfile& work,
                 const char* expectation) {
  bench::MachineRig rig;
  profile::EnergyProfile profile = bench::ConductProfile(rig, work);
  std::printf("\n== %s ==\n", title);
  bench::ExportProfileScatter(
      (std::string("fig10_") + work.name).c_str(), rig, profile);
  bench::PrintProfileSkyline(rig, profile, title);

  // "Response benefit": the most performing configuration vs the baseline
  // (all threads, maximum nominal frequency, maximum uncore).
  profile::ProfileEvaluator eval(&rig.simulator, &rig.machine, 0);
  const auto baseline = eval.Measure(
      hwsim::SocketConfig::AllOn(rig.machine.topology(), 2.6, 3.0), work,
      profile::EvaluatorParams{});
  const profile::Configuration& peak = profile.config(profile.PeakPerfIndex());
  const profile::Configuration& opt = profile.config(profile.MostEfficientIndex());
  std::printf("baseline (all-on 2.6/3.0): perf %.3g at %.1f W (eff %.3g)\n",
              baseline.perf_score, baseline.power_w,
              baseline.perf_score / baseline.power_w);
  std::printf("response benefit of the best configuration: %+.0f %%\n",
              100.0 * (peak.perf_score / baseline.perf_score - 1.0));
  // Energy saving when the ECL serves the baseline's own throughput with
  // the most efficient sufficient configuration.
  const int match = profile.FindForDemand(
      std::min(baseline.perf_score, profile.PeakPerfScore()));
  std::printf("steady-state energy saving at baseline-peak demand: %.0f %% "
              "(config %s)\n",
              100.0 * (1.0 - profile.config(match).power_w / baseline.power_w),
              bench::Describe(rig.machine.topology(), profile.config(match)).c_str());
  // The paper's "maximum possible energy savings": the efficiency gap
  // between the baseline and the optimum, i.e. energy per unit of work.
  std::printf("energy-per-work saving of the optimum vs baseline: %.0f %%\n",
              100.0 * (1.0 - (baseline.perf_score / baseline.power_w) /
                                 opt.efficiency()));
  std::printf("expectation: %s\n", expectation);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fig10_profile_workloads", "paper Fig. 10 (a)-(c)",
      "Energy profiles under hardware-resource contention; f_core=4, "
      "f_uncore=3, mixed=off (145 configurations).");
  RunWorkload("(a) memory-bound (column scan)", workload::MemoryScan(),
              "high core frequencies are a bad choice; high uncore "
              "frequency is beneficial; savings up to ~40 %");
  RunWorkload("(b) atomic increments on one cache line",
              workload::AtomicContention(),
              "best configuration: two HyperThreads of one core at turbo "
              "with the lowest uncore clock; ~90 % energy saving and large "
              "response benefit vs all-on baseline");
  RunWorkload("(c) shared hash-table inserts", workload::HashInsertShared(),
              "same effects at a smaller scale: moderate thread count "
              "wins; ~40 % saving and a single-digit response benefit");
  return 0;
}
