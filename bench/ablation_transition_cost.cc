// Ablation: sensitivity of the ECL to configuration-transition costs.
// The paper (Fig. 12 discussion, citing [7]) relies on C-/P-state
// transitions costing only microseconds; this sweep shows how the RTI
// strategy's benefit erodes — and the controller must fall back to
// steady configurations — if transitions were expensive.
#include <memory>

#include "bench_common.h"
#include "experiment/experiment.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;

namespace {

experiment::WorkloadFactory Factory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ablation_transition_cost", "design ablation (DESIGN.md)",
      "ECL at 20 % load while the configuration-apply latency is swept "
      "from the realistic microseconds to hypothetical milliseconds.");

  workload::ConstantProfile profile(0.2, Seconds(30));
  experiment::RunOptions base_opt;
  base_opt.mode = experiment::ControlMode::kBaseline;
  const auto base = RunLoadExperiment(Factory(), profile, base_opt);

  TablePrinter table({"apply latency", "ECL power W", "saving %", "p99 ms"});
  for (SimDuration apply : {Micros(20), Micros(200), Millis(2), Millis(10)}) {
    experiment::RunOptions opt;
    opt.mode = experiment::ControlMode::kEcl;
    opt.machine.config_apply_latency = apply;
    const auto r = RunLoadExperiment(Factory(), profile, opt);
    char label[32];
    if (apply >= Millis(1)) {
      std::snprintf(label, sizeof(label), "%.0f ms", ToMillis(apply));
    } else {
      std::snprintf(label, sizeof(label), "%.0f us", ToMillis(apply) * 1000.0);
    }
    table.AddRow({label, Fmt(r.avg_power_w, 1),
                  Fmt(experiment::SavingsPercent(base, r), 1),
                  Fmt(r.p99_ms, 1)});
  }
  table.Print();

  std::printf(
      "\nbaseline: %.1f W. With microsecond transitions (real hardware), "
      "frequent RTI switching is essentially free; at millisecond "
      "transition costs every switch burns active time, eroding both the "
      "savings and the latency headroom - the hardware property the "
      "paper's meta calibration verifies before relying on it.\n",
      base.avg_power_w);
  return 0;
}
