#ifndef ECLDB_BENCH_BENCH_COMMON_H_
#define ECLDB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "experiment/experiment.h"
#include "hwsim/machine.h"
#include "profile/config_generator.h"
#include "profile/energy_profile.h"
#include "profile/evaluator.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::bench {

/// Writes an experiment time series to bench_results/<name>.csv so plots
/// can be regenerated (see plots/).
inline void ExportSeries(const char* name,
                         const experiment::RunResult& result) {
  CsvWriter csv("bench_results/" + std::string(name) + ".csv",
                {"t_s", "offered_qps", "rapl_power_w", "latency_window_ms",
                 "active_threads", "perf_level_frac", "utilization"});
  for (const experiment::Sample& s : result.series) {
    csv.AddNumericRow({s.t_s, s.offered_qps, s.rapl_power_w,
                       s.latency_window_ms,
                       static_cast<double>(s.active_threads),
                       s.perf_level_frac, s.utilization});
  }
  if (csv.ok()) {
    std::printf("[series exported to bench_results/%s.csv]\n", name);
  }
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s  (%s)\n", experiment, paper_ref);
  std::printf("%s\n", description);
  std::printf("==============================================================\n");
}

/// Fresh simulator + Haswell-EP machine pair for machine-only experiments.
struct MachineRig {
  MachineRig() : machine(&simulator, hwsim::MachineParams::HaswellEp()) {}
  sim::Simulator simulator;
  hwsim::Machine machine;
};

/// Conducts a fully-evaluated energy profile for a synthetic workload.
inline profile::EnergyProfile ConductProfile(
    MachineRig& rig, const hwsim::WorkProfile& work,
    const profile::GeneratorParams& gen_params = profile::GeneratorParams{}) {
  profile::ConfigGenerator gen(rig.machine.topology(), rig.machine.freqs());
  profile::EnergyProfile profile(gen.Generate(gen_params));
  profile::ProfileEvaluator eval(&rig.simulator, &rig.machine, 0);
  eval.EvaluateAll(&profile, work, profile::EvaluatorParams{});
  return profile;
}

/// The race-to-idle baseline's energy efficiency at a relative performance
/// level (the "Baseline" line of Figs. 9/10): all threads stay on at the
/// maximum frequency; unused capacity polls.
inline double BaselineEfficiencyAt(MachineRig& rig,
                                   const profile::EnergyProfile& profile,
                                   double perf_fraction) {
  const int peak_idx = profile.PeakPerfIndex();
  if (peak_idx < 0) return 0.0;
  const hwsim::MachineParams& mp = rig.machine.params();
  const hwsim::PowerModel power(mp.topology, mp.power);
  hwsim::SocketConfig all_on = hwsim::SocketConfig::AllOn(
      mp.topology, mp.freqs.max_core_nominal(), mp.freqs.max_uncore());
  hwsim::SocketActivity act;
  act.busy_fraction = perf_fraction;
  // Bandwidth share scales with delivered performance.
  act.bandwidth_gbps = 0.0;
  const double watts = power.SocketPower(0, all_on, act).total();
  const double perf = profile.PeakPerfScore() * perf_fraction;
  return watts > 0.0 ? perf / watts : 0.0;
}

/// Short description of a configuration ("12thr @ 1.9GHz unc 1.2").
inline std::string Describe(const hwsim::Topology& topo,
                            const profile::Configuration& c) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%2dthr @ %.1fGHz unc %.1f",
                c.hw.ActiveThreadCount(), c.hw.MeanActiveCoreFreq(topo),
                c.hw.uncore_freq_ghz);
  return buf;
}

/// Exports the full profile scatter (every configuration, normalized like
/// the paper's bubble charts) to bench_results/<name>.csv.
inline void ExportProfileScatter(const char* name, MachineRig& rig,
                                 const profile::EnergyProfile& profile) {
  const double peak_perf = profile.PeakPerfScore();
  const int opt = profile.MostEfficientIndex();
  if (opt < 0 || peak_perf <= 0.0) return;
  const double opt_eff = profile.config(opt).efficiency();
  CsvWriter csv("bench_results/" + std::string(name) + ".csv",
                {"threads", "mean_core_ghz", "uncore_ghz", "perf_level",
                 "efficiency", "power_w", "zone"});
  for (int i = 1; i < profile.size(); ++i) {
    const profile::Configuration& c = profile.config(i);
    if (!c.measured()) continue;
    csv.AddRow({std::to_string(c.hw.ActiveThreadCount()),
                Fmt(c.hw.MeanActiveCoreFreq(rig.machine.topology()), 2),
                Fmt(c.hw.uncore_freq_ghz, 2), Fmt(c.perf_score / peak_perf, 4),
                Fmt(c.efficiency() / opt_eff, 4), Fmt(c.power_w, 2),
                profile::ZoneName(profile.ZoneForDemand(c.perf_score))});
  }
  if (csv.ok()) {
    std::printf("[profile scatter exported to bench_results/%s.csv]\n", name);
  }
}

/// Prints the skyline of an energy profile normalized like the paper's
/// figures (performance level and efficiency relative to the peak).
inline void PrintProfileSkyline(MachineRig& rig,
                                const profile::EnergyProfile& profile,
                                const char* title) {
  std::printf("\n-- energy profile: %s --\n", title);
  const double peak_perf = profile.PeakPerfScore();
  const int opt = profile.MostEfficientIndex();
  const double opt_eff = profile.config(opt).efficiency();
  TablePrinter table({"configuration", "perf level", "efficiency",
                      "power W", "zone"});
  for (int idx : profile.Skyline()) {
    const profile::Configuration& c = profile.config(idx);
    table.AddRow({Describe(rig.machine.topology(), c),
                  Fmt(c.perf_score / peak_perf, 3),
                  Fmt(c.efficiency() / opt_eff, 3), Fmt(c.power_w, 1),
                  profile::ZoneName(profile.ZoneForDemand(c.perf_score))});
  }
  table.Print();
  // ECL-RTI line vs baseline line (the shaded gap in Figs. 9/10): at
  // demand d (relative to the optimum's performance) the ECL runs the
  // optimal configuration a d-fraction of the time and idles the rest.
  const hwsim::PowerModelParams& pw = rig.machine.params().power;
  const double p_idle = pw.pkg_base_halted_w[0] + pw.dram_static_w;
  const double p_opt = profile.config(opt).power_w;
  const double opt_perf = profile.config(opt).perf_score;
  double max_saving = 0.0;
  std::printf("demand | RTI power | baseline power | saving\n");
  for (double d : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double p_rti = d * p_opt + (1.0 - d) * p_idle;
    const double base_eff =
        BaselineEfficiencyAt(rig, profile, d * opt_perf / peak_perf);
    const double p_base = base_eff > 0.0 ? d * opt_perf / base_eff : 0.0;
    const double saving = p_base > 0.0 ? 100.0 * (1.0 - p_rti / p_base) : 0.0;
    max_saving = std::max(max_saving, saving);
    std::printf("  %4.2f | %7.1f W | %10.1f W | %5.1f %%\n", d, p_rti, p_base,
                saving);
  }
  std::printf("max ECL-RTI saving vs baseline: %.0f %%\n", max_saving);
}

}  // namespace ecldb::bench

#endif  // ECLDB_BENCH_BENCH_COMMON_H_
