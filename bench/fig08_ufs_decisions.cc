// Reproduces Figure 8: decision quality of the CPU's automatic uncore
// frequency scaling (UFS) for a compute-bound workload.
#include "bench_common.h"

using namespace ecldb;

namespace {

struct Result {
  double ginstr_per_s;
  double pkg_w;
};

Result Run(hwsim::UncoreMode mode, double pinned_uncore) {
  bench::MachineRig rig;
  hwsim::Machine& m = rig.machine;
  const hwsim::Topology& topo = m.topology();
  m.SetUncoreMode(0, mode);
  m.ApplySocketConfig(0, hwsim::SocketConfig::AllOn(topo, 2.6, pinned_uncore));
  for (int t = 0; t < topo.threads_per_socket(); ++t) {
    m.SetThreadLoad(t, &workload::ComputeBound(), 1.0);
  }
  rig.simulator.RunFor(Millis(200));  // settle
  const uint64_t i0 = m.ReadSocketInstructions(0);
  rig.simulator.RunFor(Seconds(1));
  return {static_cast<double>(m.ReadSocketInstructions(0) - i0) / 1e9,
          m.InstantPkgPowerW(0)};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fig08_ufs_decisions", "paper Fig. 8",
      "Compute-bound workload, all cores at maximum frequency: automatic "
      "UFS vs the uncore clock pinned to 1.2 / 3.0 GHz.");
  const Result automatic = Run(hwsim::UncoreMode::kAuto, 1.2);
  const Result pinned_low = Run(hwsim::UncoreMode::kPinned, 1.2);
  const Result pinned_high = Run(hwsim::UncoreMode::kPinned, 3.0);

  TablePrinter table({"uncore setting", "Ginstr retired/s", "pkg power W"});
  table.AddRow({"automatic UFS", Fmt(automatic.ginstr_per_s, 2), Fmt(automatic.pkg_w, 1)});
  table.AddRow({"pinned 1.2 GHz", Fmt(pinned_low.ginstr_per_s, 2), Fmt(pinned_low.pkg_w, 1)});
  table.AddRow({"pinned 3.0 GHz", Fmt(pinned_high.ginstr_per_s, 2), Fmt(pinned_high.pkg_w, 1)});
  table.Print();

  std::printf(
      "\nShape check (paper): instructions retired are identical for every "
      "uncore setting, yet automatic UFS picks the highest uncore frequency "
      "and wastes %.1f W vs pinning 1.2 GHz - 'bad decision making of the "
      "built-in power management'; explicit energy control should set the "
      "EPB to performance and pin the uncore clock itself.\n",
      automatic.pkg_w - pinned_low.pkg_w);
  return 0;
}
