// Google-benchmark microbenchmarks of the hot building blocks: message
// rings, partition queues, the hash index, the vectorized query engine,
// profile lookup, and the performance-model solver.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ecl/profile_predictor.h"
#include "engine/hash_index.h"
#include "engine/morsel.h"
#include "engine/operators.h"
#include "engine/simd.h"
#include "engine/placement.h"
#include "engine/table.h"
#include "hwsim/machine.h"
#include "msg/mpmc_ring.h"
#include "msg/partition_queue.h"
#include "msg/spsc_ring.h"
#include "profile/config_generator.h"
#include "profile/energy_profile.h"
#include "workload/work_profiles.h"

namespace ecldb {
namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  msg::SpscRing<int64_t> ring(1024);
  int64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v);
    int64_t out = 0;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MpmcRingPushPop(benchmark::State& state) {
  msg::MpmcRing<int64_t> ring(1024);
  int64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v);
    int64_t out = 0;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcRingPushPop);

void BM_PartitionQueueBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  msg::PartitionQueue q(0, 1 << 12);
  msg::Message m;
  m.partition = 0;
  std::vector<msg::Message> out;
  q.TryAcquire(1);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) q.Enqueue(m);
    out.clear();
    q.DequeueBatch(1, batch, &out);
    benchmark::DoNotOptimize(out.data());
  }
  q.Release(1);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_PartitionQueueBatch)->Arg(8)->Arg(64);

void BM_HashIndexFind(benchmark::State& state) {
  engine::HashIndex idx;
  const int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) idx.Insert(k, static_cast<uint32_t>(k));
  Rng rng(5);
  for (auto _ : state) {
    const auto row = idx.Find(static_cast<int64_t>(rng.NextBounded(n)));
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexFind)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashIndexInsertErase(benchmark::State& state) {
  engine::HashIndex idx;
  int64_t k = 0;
  for (auto _ : state) {
    idx.Insert(k, 1);
    idx.Erase(k);
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexInsertErase);

// --- Vectorized engine kernels ---------------------------------------------
// A shared SSB-like star schema: 1M fact rows, one replicated dimension.
// Each benchmark runs one full pass over the fact table; items/s is rows/s.

constexpr int64_t kBenchFactRows = 1 << 20;
constexpr int64_t kBenchDimRows = 2048;
constexpr const char* kBenchRegions[] = {"ASIA", "EUROPE", "AMERICA",
                                         "AFRICA", "MIDDLE EAST"};

struct StarSchema {
  engine::Table dim;
  engine::Table fact;

  StarSchema()
      : dim("dim", engine::Schema({{"key", engine::ColumnType::kInt64},
                                   {"name", engine::ColumnType::kString},
                                   {"region", engine::ColumnType::kString}})),
        fact("fact", engine::Schema({{"fk", engine::ColumnType::kInt64},
                                     {"qty", engine::ColumnType::kInt64},
                                     {"price", engine::ColumnType::kInt64},
                                     {"tag", engine::ColumnType::kString}})) {
    Rng rng(42);
    for (int64_t k = 1; k <= kBenchDimRows; ++k) {
      dim.AppendRow({k, "name" + std::to_string(k % 250),
                     std::string(kBenchRegions[rng.NextBounded(5)])});
    }
    for (int64_t i = 0; i < kBenchFactRows; ++i) {
      fact.AppendRow({rng.NextInRange(1, kBenchDimRows),
                      rng.NextInRange(1, 50), rng.NextInRange(1, 10000),
                      "tag" + std::to_string(rng.NextBounded(16))});
    }
  }
};

StarSchema& SharedSchema() {
  static StarSchema s;
  return s;
}

/// One filter kernel over the whole fact table, vectorized vs the
/// row-at-a-time reference, per predicate kind.
void BM_FilterKernel(benchmark::State& state, engine::Predicate pred,
                     bool vectorized) {
  StarSchema& s = SharedSchema();
  engine::FilterOperator filter(&s.fact, {std::move(pred)});
  engine::TableScan scan(&s.fact, 4096);
  std::vector<uint32_t> rows;
  for (auto _ : state) {
    scan.Reset();
    size_t kept = 0;
    while (scan.Next(&rows)) {
      kept += vectorized ? filter.Apply(&rows) : filter.ApplyScalar(&rows);
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * kBenchFactRows);
}

#define ECLDB_FILTER_BENCH(name, pred)                                 \
  BENCHMARK_CAPTURE(BM_FilterKernel, name##_scalar, pred, false);      \
  BENCHMARK_CAPTURE(BM_FilterKernel, name##_vectorized, pred, true)

ECLDB_FILTER_BENCH(int_range_fact,
                   engine::Predicate::IntRange(engine::ColumnRef::Fact(1), 10,
                                               35));
ECLDB_FILTER_BENCH(int_range_dim,
                   engine::Predicate::IntRange(
                       engine::ColumnRef::Dim(0, &SharedSchema().dim, 0), 1,
                       kBenchDimRows / 4));
ECLDB_FILTER_BENCH(string_eq_dim,
                   engine::Predicate::StringEq(
                       engine::ColumnRef::Dim(0, &SharedSchema().dim, 2),
                       "ASIA"));
ECLDB_FILTER_BENCH(string_in_fact,
                   engine::Predicate::StringIn(engine::ColumnRef::Fact(3),
                                               {"tag1", "tag5", "tag9"}));
ECLDB_FILTER_BENCH(string_range_dim,
                   engine::Predicate::StringRange(
                       engine::ColumnRef::Dim(0, &SharedSchema().dim, 1),
                       "name1", "name2zz"));

#undef ECLDB_FILTER_BENCH

/// Pure aggregation throughput (no filter): packed int keys + the
/// open-addressing table vs the string-keyed std::map baseline.
void BM_Aggregate(benchmark::State& state, bool vectorized) {
  StarSchema& s = SharedSchema();
  const std::vector<engine::ColumnRef> group_by = {
      engine::ColumnRef::Dim(0, &s.dim, 2),  // region (5)
      engine::ColumnRef::Dim(0, &s.dim, 1),  // name (250)
  };
  const engine::ValueExpr value = engine::ValueExpr::Product(
      engine::ColumnRef::Fact(1), engine::ColumnRef::Fact(2), 0.01);
  engine::FilterOperator filter(&s.fact, {});
  for (auto _ : state) {
    engine::HashAggregator agg(group_by, value);
    if (vectorized) {
      engine::RunAggregationPipeline(&s.fact, filter, &agg);
    } else {
      engine::RunAggregationPipelineScalar(&s.fact, filter, &agg);
    }
    benchmark::DoNotOptimize(agg.TotalSum());
  }
  state.SetItemsProcessed(state.iterations() * kBenchFactRows);
}
BENCHMARK_CAPTURE(BM_Aggregate, string_map_scalar, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Aggregate, int_key_vectorized, true)
    ->Unit(benchmark::kMillisecond);

/// The vectorized pipeline with the SIMD kernels forced to the portable
/// scalar fallback: what a non-AVX2 host (or ECLDB_SIMD=OFF build) runs.
void BM_AggregateScalarKernels(benchmark::State& state) {
  StarSchema& s = SharedSchema();
  const std::vector<engine::ColumnRef> group_by = {
      engine::ColumnRef::Dim(0, &s.dim, 2),
      engine::ColumnRef::Dim(0, &s.dim, 1),
  };
  const engine::ValueExpr value = engine::ValueExpr::Product(
      engine::ColumnRef::Fact(1), engine::ColumnRef::Fact(2), 0.01);
  engine::FilterOperator filter(&s.fact, {});
  engine::simd::SetLevelOverride(engine::simd::Level::kScalar);
  for (auto _ : state) {
    engine::HashAggregator agg(group_by, value);
    engine::RunAggregationPipeline(&s.fact, filter, &agg);
    benchmark::DoNotOptimize(agg.TotalSum());
  }
  engine::simd::SetLevelOverride(std::nullopt);
  state.SetItemsProcessed(state.iterations() * kBenchFactRows);
}
BENCHMARK(BM_AggregateScalarKernels)->Unit(benchmark::kMillisecond);

/// Morsel-driven parallel aggregation over the same pipeline, by worker
/// count (worker count 1 = pool with the caller only).
void BM_AggregateMorsel(benchmark::State& state) {
  StarSchema& s = SharedSchema();
  const std::vector<engine::ColumnRef> group_by = {
      engine::ColumnRef::Dim(0, &s.dim, 2),
      engine::ColumnRef::Dim(0, &s.dim, 1),
  };
  const engine::ValueExpr value = engine::ValueExpr::Product(
      engine::ColumnRef::Fact(1), engine::ColumnRef::Fact(2), 0.01);
  engine::FilterOperator filter(&s.fact, {});
  engine::MorselPool pool(static_cast<int>(state.range(0)) - 1);
  for (auto _ : state) {
    engine::HashAggregator agg(group_by, value);
    engine::RunMorselAggregationPipeline(&s.fact, filter, &agg, &pool);
    benchmark::DoNotOptimize(agg.TotalSum());
  }
  state.SetItemsProcessed(state.iterations() * kBenchFactRows);
}
BENCHMARK(BM_AggregateMorsel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// The full SSB-style pipeline (scan -> filter -> group-by aggregate),
/// vectorized vs the row-at-a-time reference.
void BM_SsbPipeline(benchmark::State& state, bool vectorized) {
  StarSchema& s = SharedSchema();
  const std::vector<engine::Predicate> preds = {
      engine::Predicate::StringEq(engine::ColumnRef::Dim(0, &s.dim, 2),
                                  "ASIA"),
      engine::Predicate::IntRange(engine::ColumnRef::Fact(1), 5, 45),
  };
  const std::vector<engine::ColumnRef> group_by = {
      engine::ColumnRef::Dim(0, &s.dim, 2),
      engine::ColumnRef::Fact(3),
  };
  const engine::ValueExpr value = engine::ValueExpr::Product(
      engine::ColumnRef::Fact(1), engine::ColumnRef::Fact(2));
  engine::FilterOperator filter(&s.fact, preds);
  for (auto _ : state) {
    engine::HashAggregator agg(group_by, value);
    if (vectorized) {
      engine::RunAggregationPipeline(&s.fact, filter, &agg);
    } else {
      engine::RunAggregationPipelineScalar(&s.fact, filter, &agg);
    }
    benchmark::DoNotOptimize(agg.TotalSum());
  }
  state.SetItemsProcessed(state.iterations() * kBenchFactRows);
}
BENCHMARK_CAPTURE(BM_SsbPipeline, scalar, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SsbPipeline, vectorized, true)
    ->Unit(benchmark::kMillisecond);

void BM_ProfileFindForDemand(benchmark::State& state) {
  const hwsim::Topology topo = hwsim::Topology::HaswellEp2S();
  profile::ConfigGenerator gen(topo, hwsim::FrequencyTable::HaswellEp());
  profile::EnergyProfile profile(gen.Generate(profile::GeneratorParams{}));
  Rng rng(3);
  for (int i = 1; i < profile.size(); ++i) {
    profile.Record(i, 20.0 + rng.NextDouble() * 100.0,
                   1e9 * (0.1 + rng.NextDouble()), Seconds(1));
  }
  double demand = 0.0;
  for (auto _ : state) {
    demand += 1e7;
    if (demand > profile.PeakPerfScore()) demand = 0.0;
    benchmark::DoNotOptimize(profile.FindForDemand(demand));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileFindForDemand);

profile::FeatureVector MakeFeature(Rng& rng) {
  profile::FeatureInputs in;
  in.instr_rate = 1e9 * (0.5 + rng.NextDouble());
  in.dram_bytes_rate = 1e9 * rng.NextDouble();
  in.active_threads = 1 + static_cast<int>(rng.NextDouble() * 23.0);
  in.core_freq_ghz = 1.2 + rng.NextDouble() * 1.4;
  in.rti_duty = 0.2 + rng.NextDouble() * 0.8;
  in.utilization = 0.3 + rng.NextDouble() * 0.7;
  return profile::ExtractFeatures(in);
}

/// kNN prediction against a full learn cache (145 configurations x 8
/// observations). The drift handler runs one Predict per non-idle
/// configuration, so a full seeding pass costs ~144x this. Budget: even at
/// 1 us/lookup that is ~0.15 ms, vs the 101 ms (settle + measure) one
/// multiplexed evaluation slice costs the socket — the predictor pays for
/// itself if it skips a single measurement.
void BM_PredictorPredict(benchmark::State& state) {
  const hwsim::Topology topo = hwsim::Topology::HaswellEp2S();
  profile::ConfigGenerator gen(topo, hwsim::FrequencyTable::HaswellEp());
  profile::EnergyProfile profile(gen.Generate(profile::GeneratorParams{}));
  ecl::ProfilePredictorParams params;
  params.enabled = true;
  ecl::ProfilePredictor pred(profile.size(), params);
  Rng rng(7);
  for (int round = 0; round < params.max_entries_per_config; ++round) {
    for (int i = 1; i < profile.size(); ++i) {
      pred.Observe(i, MakeFeature(rng), 20.0 + rng.NextDouble() * 100.0,
                   1e9 * (0.1 + rng.NextDouble()), Seconds(round + 1));
    }
  }
  const profile::FeatureVector query = MakeFeature(rng);
  int index = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.Predict(index, query));
    if (++index >= pred.num_configs()) index = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorPredict);

/// Learn-cache insert on the online-measurement path (once per ECL
/// interval per socket, i.e. 1 Hz — vanishing next to the interval).
void BM_PredictorObserve(benchmark::State& state) {
  const hwsim::Topology topo = hwsim::Topology::HaswellEp2S();
  profile::ConfigGenerator gen(topo, hwsim::FrequencyTable::HaswellEp());
  profile::EnergyProfile profile(gen.Generate(profile::GeneratorParams{}));
  ecl::ProfilePredictorParams params;
  params.enabled = true;
  ecl::ProfilePredictor pred(profile.size(), params);
  Rng rng(11);
  std::vector<profile::FeatureVector> features;
  for (int i = 0; i < 64; ++i) features.push_back(MakeFeature(rng));
  int index = 1;
  size_t f = 0;
  SimTime at = 0;
  for (auto _ : state) {
    at += Millis(1);
    pred.Observe(index, features[f], 50.0, 1e9, at);
    if (++index >= pred.num_configs()) index = 1;
    if (++f >= features.size()) f = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorObserve);

void BM_PerfModelSolve(benchmark::State& state) {
  const hwsim::MachineParams params = hwsim::MachineParams::HaswellEp();
  const hwsim::BandwidthModel bw(params.bandwidth);
  const hwsim::PerfModel model(params.topology, bw, params.perf);
  const hwsim::MachineConfig cfg =
      hwsim::MachineConfig::AllOn(params.topology, 2.6, 3.0);
  std::vector<hwsim::ThreadLoad> loads(
      static_cast<size_t>(params.topology.total_threads()),
      hwsim::ThreadLoad{&workload::MemoryScan(), 1.0});
  hwsim::SolveResult out;
  for (auto _ : state) {
    model.Solve(cfg, loads, &out);
    benchmark::DoNotOptimize(out.threads.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerfModelSolve);

/// One simulated second of Machine::Advance slices under constant full
/// load: the steady-state path (cache hit on every slice after the first).
void BM_MachineAdvanceSteady(benchmark::State& state) {
  sim::Simulator simulator;
  hwsim::Machine machine(&simulator, hwsim::MachineParams::HaswellEp());
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  for (HwThreadId t = 0; t < machine.topology().total_threads(); ++t) {
    machine.SetThreadLoad(t, &workload::MemoryScan(), 1.0);
  }
  simulator.RunFor(Millis(10));  // settle stall + prime the cache
  for (auto _ : state) {
    simulator.RunFor(Seconds(1));
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // 1 ms slices
}
BENCHMARK(BM_MachineAdvanceSteady)->Unit(benchmark::kMillisecond);

/// One simulated second of Machine::Advance slices with a load change
/// every slice: every slice takes the full re-solve path (the cost every
/// slice paid before steady-state fast-forward).
void BM_MachineAdvanceResolve(benchmark::State& state) {
  sim::Simulator simulator;
  hwsim::Machine machine(&simulator, hwsim::MachineParams::HaswellEp());
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  for (HwThreadId t = 0; t < machine.topology().total_threads(); ++t) {
    machine.SetThreadLoad(t, &workload::MemoryScan(), 1.0);
  }
  simulator.RunFor(Millis(10));
  double flip = 0.999;
  for (auto _ : state) {
    for (int ms = 0; ms < 1000; ++ms) {
      machine.SetThreadLoad(0, &workload::MemoryScan(), flip);
      flip = flip == 1.0 ? 0.999 : 1.0;
      simulator.RunFor(Millis(1));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MachineAdvanceResolve)->Unit(benchmark::kMillisecond);

// --- Dynamic placement ------------------------------------------------------

/// The routing hot path with dynamic placement: every message send does a
/// HomeOf lookup plus an epoch read (the stamp compared on delivery to
/// detect stale-epoch arrivals).
void BM_PlacementRouteLookup(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  engine::PlacementMap placement(parts, 2);
  Rng rng(11);
  for (auto _ : state) {
    const PartitionId p = static_cast<PartitionId>(rng.NextBounded(parts));
    const SocketId home = placement.HomeOf(p);
    const int64_t epoch = placement.epoch();
    benchmark::DoNotOptimize(home);
    benchmark::DoNotOptimize(epoch);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementRouteLookup)->Arg(48)->Arg(4096);

/// One full migration bookkeeping cycle (Begin + Commit): the epoch bump
/// and per-socket recount that every live migration pays once, there and
/// back.
void BM_PlacementMigrationCycle(benchmark::State& state) {
  engine::PlacementMap placement(48, 2);
  for (auto _ : state) {
    placement.BeginMigration(0, 1);
    benchmark::DoNotOptimize(placement.CommitMigration(0));
    placement.BeginMigration(0, 0);
    benchmark::DoNotOptimize(placement.CommitMigration(0));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PlacementMigrationCycle);

/// One simulated second with sparse events (10 Hz) over an idle machine:
/// the Simulator::RunUntil fast-forward path between events.
void BM_SimulatorRunUntilSparseEvents(benchmark::State& state) {
  sim::Simulator simulator;
  hwsim::Machine machine(&simulator, hwsim::MachineParams::HaswellEp());
  simulator.RunFor(Millis(10));
  int64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < 10; ++i) {
      simulator.ScheduleAfter(Millis(100 * (i + 1)), [&fired] { ++fired; });
    }
    simulator.RunFor(Seconds(1));
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_SimulatorRunUntilSparseEvents)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ecldb

BENCHMARK_MAIN();
