// Reproduces Figure 14: load adaptation and query latency for the
// twitter-like real-world load profile (a 2-hour trace replayed within 3
// minutes), baseline vs ECL at 1 Hz and 2 Hz.
#include <memory>

#include "bench_common.h"
#include "experiment/experiment.h"
#include "experiment/run_matrix.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;
using experiment::ControlMode;
using experiment::RunOptions;
using experiment::RunResult;

namespace {

experiment::WorkloadFactory Factory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

RunResult Run(ControlMode mode, SimDuration ecl_interval) {
  workload::TwitterProfile profile;
  RunOptions options;
  options.mode = mode;
  options.ecl.socket.interval = ecl_interval;
  options.sample_period = Seconds(2);
  return RunLoadExperiment(Factory(), profile, options);
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "fig14_twitter_profile", "paper Fig. 14 (a)+(b)",
      "Twitter-like load profile (2 h trace compressed to 3 minutes, "
      "sudden peaks, frequent alternation), non-indexed key-value store.");

  // The three arms are independent simulations; run them concurrently.
  std::vector<RunResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    switch (i) {
      case 0: results[0] = Run(ControlMode::kBaseline, Seconds(1)); break;
      case 1: results[1] = Run(ControlMode::kEcl, Seconds(1)); break;
      default: results[2] = Run(ControlMode::kEcl, Millis(500)); break;
    }
  });
  const RunResult& base = results[0];
  const RunResult& ecl1 = results[1];
  const RunResult& ecl2 = results[2];
  bench::ExportSeries("fig14_baseline", base);
  bench::ExportSeries("fig14_ecl_1hz", ecl1);
  bench::ExportSeries("fig14_ecl_2hz", ecl2);

  std::printf("\n-- (a) load and power over time (sampled every 2 s) --\n");
  TablePrinter series({"t s", "load kQps", "baseline W", "ECL 1Hz W",
                       "ECL 2Hz W"});
  for (size_t i = 0; i < base.series.size(); i += 3) {
    series.AddRow({Fmt(base.series[i].t_s, 0),
                   Fmt(base.series[i].offered_qps / 1000.0, 1),
                   Fmt(base.series[i].rapl_power_w, 1),
                   Fmt(ecl1.series[i].rapl_power_w, 1),
                   Fmt(ecl2.series[i].rapl_power_w, 1)});
  }
  series.Print();

  std::printf("\n-- (b) query latencies (limit 100 ms) --\n");
  TablePrinter lat({"run", "mean ms", "p95 ms", "p99 ms", "max ms", "viol %",
                    "energy J", "saving %"});
  auto row = [&](const char* name, const RunResult& r) {
    lat.AddRow({name, Fmt(r.mean_ms, 1), Fmt(r.p95_ms, 1), Fmt(r.p99_ms, 1),
                Fmt(r.max_ms, 1), Fmt(100.0 * r.violation_frac, 2),
                Fmt(r.energy_j, 0), Fmt(experiment::SavingsPercent(base, r), 1)});
  };
  row("baseline", base);
  row("ECL 1 Hz", ecl1);
  row("ECL 2 Hz", ecl2);
  lat.Print();

  std::printf(
      "\nShape check (paper): the ECL draws significantly less power most "
      "of the time but, being reactive, needs a moment to follow the "
      "sudden load peaks — visible as latency outliers, which the 2 Hz "
      "base frequency reduces.\n");
  return 0;
}
