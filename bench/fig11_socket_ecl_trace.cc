// Reproduces Figure 11: the socket-level ECL guiding example — measured
// utilization and applied performance level over time, including RTI usage
// and a multiplexed-adaptation phase. Also runs the RTI-cycle ablation
// from DESIGN.md.
//
// The table is sourced from the generic telemetry subsystem (sampled gauge
// series + registry counters) rather than bespoke per-figure reads; the
// output is byte-identical to the pre-telemetry version of this bench.
// With --trace[=path] the run also exports a Chrome trace (load it in
// chrome://tracing or ui.perfetto.dev) and the sampled series as CSV.
#include <cstring>
#include <string>

#include "bench_common.h"
#include "common/check.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

using namespace ecldb;

namespace {

void RunTrace(int max_rti_cycles, bool print_table,
              const std::string& trace_path) {
  sim::Simulator sim;
  telemetry::TelemetryParams tp;
  tp.enabled = true;
  tp.sample_period = Seconds(1);
  telemetry::Telemetry tel(tp);
  tel.Bind(&sim);
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  machine.AttachTelemetry(&tel);
  engine::EngineParams ep;
  ep.telemetry = &tel;
  engine::Engine engine(&sim, &machine, ep);
  workload::KvParams kvp;
  kvp.indexed = true;
  workload::KvWorkload kv(&engine, kvp);
  const double cap = workload::BaselineCapacityQps(machine.params(), kv);

  ecl::EclParams params;
  params.socket.rti.max_cycles_per_interval = max_rti_cycles;
  params.telemetry = &tel;
  ecl::EnergyControlLoop loop(&sim, &engine, params);
  loop.Start();
  engine.scheduler().SetSyntheticLoad(&kv.profile());
  sim.RunFor(Seconds(30));  // prime the profiles
  engine.scheduler().SetSyntheticLoad(nullptr);

  // The guiding example: full load, two decreasing steps, then a low phase
  // where RTI kicks in; at t=10 s the profile is flagged stale so the
  // multiplexed adaptation window becomes visible.
  workload::StepProfile steps({{Seconds(0), 1.0},
                               {Seconds(4), 0.55},
                               {Seconds(6), 0.25},
                               {Seconds(9), 0.12}},
                              Seconds(14));
  workload::DriverParams dp;
  dp.capacity_qps = cap;
  workload::LoadDriver driver(&sim, &engine, &kv, &steps, dp);
  driver.Start();
  tel.StartSampler(sim.now());
  sim.Schedule(sim.now() + Seconds(10), [&] { loop.FlagWorkloadChange(); });

  const double e0 = machine.TotalEnergyJoules();
  // Multiplexed-evaluation deltas come from the registry counter; the
  // per-second control state comes from the sampled gauge series below.
  telemetry::MetricRegistry& reg = tel.registry();
  std::vector<int64_t> eval_counts;
  eval_counts.push_back(
      reg.CounterValueByName("ecl/socket0/multiplexed_evals"));
  for (int t = 1; t <= 14; ++t) {
    sim.RunFor(Seconds(1));
    eval_counts.push_back(
        reg.CounterValueByName("ecl/socket0/multiplexed_evals"));
  }
  const double energy = machine.TotalEnergyJoules() - e0;

  if (print_table) {
    TablePrinter table({"t s", "load", "util", "perf level", "config",
                        "rti", "duty", "cycles", "mux evals"});
    // Column indices into the sampled series (column 0 is t_s).
    const std::vector<std::string> header = tel.SeriesHeader();
    auto col = [&header](const char* name) {
      for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name) return i;
      }
      ECLDB_CHECK(false && "series column not found");
      return header.size();
    };
    const size_t c_util = col("ecl/socket0/utilization");
    const size_t c_level = col("ecl/socket0/perf_level");
    const size_t c_peak = col("ecl/socket0/peak_perf");
    const size_t c_config = col("ecl/socket0/config_index");
    const size_t c_duty = col("ecl/socket0/rti_duty");
    const size_t c_cycles = col("ecl/socket0/rti_cycles");
    const ecl::SocketEcl& se = loop.socket(0);
    for (int t = 1; t <= 14; ++t) {
      const std::vector<double>& row =
          tel.series()[static_cast<size_t>(t - 1)];
      const int config = static_cast<int>(row[c_config]);
      const int cycles = static_cast<int>(row[c_cycles]);
      table.AddRow({FmtInt(t), Fmt(steps.LoadAt(Seconds(t - 1)), 2),
                    Fmt(row[c_util], 2), Fmt(row[c_level] / row[c_peak], 2),
                    bench::Describe(machine.topology(),
                                    se.profile().config(config)),
                    cycles > 0 ? "on" : "off", Fmt(row[c_duty], 2),
                    FmtInt(cycles),
                    FmtInt(eval_counts[static_cast<size_t>(t)] -
                           eval_counts[static_cast<size_t>(t - 1)])});
    }
    table.Print();
  }
  std::printf("max RTI cycles/interval = %2d: energy %.1f J, mean latency "
              "%.1f ms, p99 %.1f ms\n",
              max_rti_cycles, energy, engine.latency().all().Mean(),
              engine.latency().all().Percentile(99));

  if (!trace_path.empty()) {
    if (telemetry::WriteChromeTrace(tel, trace_path)) {
      std::printf("[trace exported to %s]\n", trace_path.c_str());
    }
    const std::string csv_path = trace_path + ".series.csv";
    if (telemetry::WriteSeriesCsv(tel, csv_path)) {
      std::printf("[telemetry series exported to %s]\n", csv_path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --trace or --trace=<path>: export the Chrome trace + series CSV of the
  // headline run. Off by default so the default stdout stays stable.
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "bench_results/fig11_socket_ecl_trace.trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }
  bench::PrintHeader(
      "fig11_socket_ecl_trace", "paper Fig. 11",
      "Socket-level ECL guiding example: utilization, applied performance "
      "level, RTI switching and a multiplexed-adaptation window (flagged "
      "at t=10 s). Indexed key-value workload, 1 Hz base interval.");
  RunTrace(50, /*print_table=*/true, trace_path);

  std::printf("\n-- ablation: RTI cycles per interval (DESIGN.md) --\n");
  for (int cycles : {1, 5, 10, 20, 50}) RunTrace(cycles, false, "");
  std::printf(
      "\nShape check (paper): at full utilization the discovery strategy "
      "raises the performance level exponentially; below full utilization "
      "the level follows utilization (Eq. 3); at low load the ECL emulates "
      "the level via race-to-idle; more RTI cycles per interval lower the "
      "latency impact of idling at slightly higher switching overhead.\n");
  return 0;
}
