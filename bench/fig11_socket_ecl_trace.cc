// Reproduces Figure 11: the socket-level ECL guiding example — measured
// utilization and applied performance level over time, including RTI usage
// and a multiplexed-adaptation phase. Also runs the RTI-cycle ablation
// from DESIGN.md.
#include "bench_common.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

using namespace ecldb;

namespace {

void RunTrace(int max_rti_cycles, bool print_table) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  workload::KvParams kvp;
  kvp.indexed = true;
  workload::KvWorkload kv(&engine, kvp);
  const double cap = workload::BaselineCapacityQps(machine.params(), kv);

  ecl::EclParams params;
  params.socket.rti.max_cycles_per_interval = max_rti_cycles;
  ecl::EnergyControlLoop loop(&sim, &engine, params);
  loop.Start();
  engine.scheduler().SetSyntheticLoad(&kv.profile());
  sim.RunFor(Seconds(30));  // prime the profiles
  engine.scheduler().SetSyntheticLoad(nullptr);

  // The guiding example: full load, two decreasing steps, then a low phase
  // where RTI kicks in; at t=10 s the profile is flagged stale so the
  // multiplexed adaptation window becomes visible.
  workload::StepProfile steps({{Seconds(0), 1.0},
                               {Seconds(4), 0.55},
                               {Seconds(6), 0.25},
                               {Seconds(9), 0.12}},
                              Seconds(14));
  workload::DriverParams dp;
  dp.capacity_qps = cap;
  workload::LoadDriver driver(&sim, &engine, &kv, &steps, dp);
  driver.Start();
  sim.Schedule(sim.now() + Seconds(10), [&] { loop.FlagWorkloadChange(); });

  TablePrinter table({"t s", "load", "util", "perf level", "config",
                      "rti", "duty", "cycles", "mux evals"});
  const double e0 = machine.TotalEnergyJoules();
  int64_t prev_evals = loop.socket(0).maintenance().multiplexed_evals();
  for (int t = 1; t <= 14; ++t) {
    sim.RunFor(Seconds(1));
    ecl::SocketEcl& se = loop.socket(0);
    const auto& plan = se.last_plan();
    const int64_t evals = se.maintenance().multiplexed_evals();
    if (print_table) {
      table.AddRow({FmtInt(t), Fmt(steps.LoadAt(Seconds(t - 1)), 2),
                    Fmt(se.last_utilization(), 2),
                    Fmt(se.performance_level() / se.profile().PeakPerfScore(), 2),
                    bench::Describe(machine.topology(),
                                    se.profile().config(se.current_config_index())),
                    plan.use_rti ? "on" : "off", Fmt(plan.duty, 2),
                    FmtInt(plan.use_rti ? plan.cycles : 0),
                    FmtInt(evals - prev_evals)});
    }
    prev_evals = evals;
  }
  const double energy = machine.TotalEnergyJoules() - e0;
  if (print_table) {
    table.Print();
  }
  std::printf("max RTI cycles/interval = %2d: energy %.1f J, mean latency "
              "%.1f ms, p99 %.1f ms\n",
              max_rti_cycles, energy, engine.latency().all().Mean(),
              engine.latency().all().Percentile(99));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fig11_socket_ecl_trace", "paper Fig. 11",
      "Socket-level ECL guiding example: utilization, applied performance "
      "level, RTI switching and a multiplexed-adaptation window (flagged "
      "at t=10 s). Indexed key-value workload, 1 Hz base interval.");
  RunTrace(50, /*print_table=*/true);

  std::printf("\n-- ablation: RTI cycles per interval (DESIGN.md) --\n");
  for (int cycles : {1, 5, 10, 20, 50}) RunTrace(cycles, false);
  std::printf(
      "\nShape check (paper): at full utilization the discovery strategy "
      "raises the performance level exponentially; below full utilization "
      "the level follows utilization (Eq. 3); at low load the ECL emulates "
      "the level via race-to-idle; more RTI cycles per interval lower the "
      "latency impact of idling at slightly higher switching overhead.\n");
  return 0;
}
