// Ablation for learned profile maintenance (ROADMAP item 3): on the
// recurring-drift trace (prime on the indexed KV workload, then switch
// between non-indexed and indexed every 40 s at 40 % load), compare how
// long each maintenance strategy needs to re-converge its energy profile
// after a workload change, and what the converged configuration costs.
//
//   multiplexed      the paper's exhaustive rediscovery: every drift
//                    invalidates all ~145 configurations and the
//                    multiplexed evaluator re-measures them 6 per second.
//   learned          + the kNN predictor: recurring profiles are seeded
//                    from the learn cache; only high-ignorance
//                    configurations are measured. The first sight of a
//                    workload is still a full sweep.
//   learned warm     the predictor additionally starts from a serialized
//                    learn cache of a previous run (DBMS restart).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "experiment/drift_trace.h"
#include "experiment/run_matrix.h"

using namespace ecldb;

namespace {

experiment::DriftTraceParams ArmParams(bool learned) {
  experiment::DriftTraceParams p;
  p.predictor.enabled = learned;
  return p;
}

double MeanRecurringAdapt(const experiment::DriftTraceResult& r) {
  // Phase 0 is the first sight of the scan workload — a full sweep for
  // every arm. Phases >= 1 revisit profiles seen before; that is where a
  // learned predictor can win.
  double sum = 0.0;
  int n = 0;
  for (size_t i = 1; i < r.phases.size(); ++i) {
    if (r.phases[i].adapt_s > 0.0) {
      sum += r.phases[i].adapt_s;
      ++n;
    }
  }
  return n > 0 ? sum / n : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = experiment::ParseJobs(argc, argv);
  bench::PrintHeader(
      "ablation_learned_profiles", "ROADMAP item 3; method of Fig. 15",
      "Recurring workload drift (indexed <-> non-indexed KV, 40 s phases, "
      "40 % load): profile re-convergence time and converged quality with "
      "exhaustive vs learned profile maintenance.");

  // The warm arm needs a trained learn cache, produced by a plain learned
  // run of the same trace (sequential prologue; the matrix arms are
  // independent simulations).
  const experiment::DriftTraceResult trainer = RunDriftTrace(ArmParams(true));

  const char* names[] = {"multiplexed", "learned", "learned warm"};
  std::vector<experiment::DriftTraceResult> results(3);
  experiment::RunMatrix(3, jobs, [&](int i) {
    experiment::DriftTraceParams p = ArmParams(i >= 1);
    if (i == 2) p.prime_learn_cache = trainer.learn_cache;
    results[static_cast<size_t>(i)] = RunDriftTrace(p);
  });

  TablePrinter table({"arm", "phase", "workload", "adapt s", "evals",
                      "seeded", "energy J", "tail J", "tail p99 ms",
                      "best config"});
  for (int i = 0; i < 3; ++i) {
    const experiment::DriftTraceResult& r = results[static_cast<size_t>(i)];
    for (size_t ph = 0; ph < r.phases.size(); ++ph) {
      const experiment::DriftTracePhase& p = r.phases[ph];
      table.AddRow({names[i], FmtInt(static_cast<int64_t>(ph)), p.workload,
                    Fmt(p.adapt_s, 0), FmtInt(p.evals), FmtInt(p.seeded),
                    Fmt(p.energy_j, 0), Fmt(p.tail_energy_j, 0),
                    Fmt(p.tail_p99_ms, 2), p.best_config});
    }
  }
  table.Print();

  {
    CsvWriter csv("bench_results/ablation_learned_profiles.csv",
                  {"arm", "phase", "workload", "adapt_s", "evals", "seeded",
                   "energy_j", "tail_energy_j", "tail_p99_ms"});
    for (int i = 0; i < 3; ++i) {
      const experiment::DriftTraceResult& r = results[static_cast<size_t>(i)];
      for (size_t ph = 0; ph < r.phases.size(); ++ph) {
        const experiment::DriftTracePhase& p = r.phases[ph];
        csv.AddRow({names[i], std::to_string(ph), p.workload,
                    Fmt(p.adapt_s, 0), std::to_string(p.evals),
                    std::to_string(p.seeded), Fmt(p.energy_j, 1),
                    Fmt(p.tail_energy_j, 1), Fmt(p.tail_p99_ms, 3)});
      }
    }
    if (csv.ok()) {
      std::printf(
          "[series exported to bench_results/ablation_learned_profiles.csv]\n");
    }
  }

  const double mux_adapt = MeanRecurringAdapt(results[0]);
  const double learned_adapt = MeanRecurringAdapt(results[1]);
  const double warm_adapt = MeanRecurringAdapt(results[2]);
  std::printf("\n-- recurring-drift adaptation time (phases 1+) --\n");
  std::printf("multiplexed : %5.1f s\n", mux_adapt);
  std::printf("learned     : %5.1f s  (%.1fx faster)\n", learned_adapt,
              learned_adapt > 0.0 ? mux_adapt / learned_adapt : 0.0);
  std::printf("learned warm: %5.1f s  (%.1fx faster)\n", warm_adapt,
              warm_adapt > 0.0 ? mux_adapt / warm_adapt : 0.0);
  std::printf("total energy: multiplexed %.0f J, learned %.0f J, "
              "learned warm %.0f J\n",
              results[0].total_energy_j, results[1].total_energy_j,
              results[2].total_energy_j);

  std::printf(
      "\nShape check: the exhaustive sweep needs ~|profile| / "
      "evals_per_interval ~ 24 intervals per drift no matter how often it "
      "has seen the workload; the learned arm pays the sweep once per "
      "distinct work profile and afterwards re-converges in the few "
      "intervals its remaining high-ignorance configurations need. The "
      "converged configuration (tail energy, tail p99) must match the "
      "exhaustive result - the predictor only short-circuits rediscovery, "
      "the skyline/zone logic is unchanged.\n");
  return 0;
}
