// Telemetry disabled-path overhead check: advancing a fully-loaded machine
// with a telemetry context attached (but disabled — no sampler, no trace)
// must cost within a small tolerance of advancing with no telemetry at all.
// The attached-but-disabled run still pays the always-on counter cells
// (RAPL reads, C-state residency) and the inlined enabled-flag branches;
// the point of the compile-time-inlined handle design is that this is
// noise. Exits non-zero when the measured overhead exceeds the threshold
// (default 2 %, override with ECLDB_TELEMETRY_OVERHEAD_PCT).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "hwsim/hw_config.h"
#include "telemetry/telemetry.h"
#include "workload/work_profiles.h"

using namespace ecldb;

namespace {

/// One timed run: full solver path (fast-forward off), one forced machine
/// slice per simulated millisecond — the per-slice work is where every
/// disabled-path branch and always-on counter lives.
double RunOnceSeconds(bool attach) {
  sim::Simulator sim;
  sim.set_fast_forward(false);
  telemetry::TelemetryParams tp;  // enabled = false: the disabled path
  telemetry::Telemetry tel(tp);
  tel.Bind(&sim);
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  if (attach) machine.AttachTelemetry(&tel);
  const hwsim::Topology& topo = machine.topology();
  machine.ApplyMachineConfig(hwsim::MachineConfig::AllOn(topo, 2.6, 3.0));
  for (int t = 0; t < topo.total_threads(); ++t) {
    machine.SetThreadLoad(t, &workload::Firestarter(), 0.7);
  }
  // A constant load never re-enters the solver (the machine integrates
  // lazily between boundaries), so perturb one thread's intensity every
  // simulated millisecond: each step re-solves the full 48-thread slice.
  constexpr int kSlices = 500000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kSlices; ++k) {
    sim.RunFor(Millis(1));
    machine.SetThreadLoad(k % topo.total_threads(), &workload::Firestarter(),
                          (k & 1) != 0 ? 0.8 : 0.6);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "telemetry_overhead", "telemetry subsystem acceptance",
      "Wall-clock cost of the telemetry disabled path: machine advance "
      "with an attached-but-disabled telemetry context vs none at all.");

  double threshold_pct = 2.0;
  if (const char* env = std::getenv("ECLDB_TELEMETRY_OVERHEAD_PCT")) {
    threshold_pct = std::atof(env);
  }

  // Best-of-N with alternating arms: scheduler noise only ever inflates a
  // measurement, so the minimum is the fair estimate for each arm.
  constexpr int kTrials = 5;
  double best_off = 1e100, best_on = 1e100;
  RunOnceSeconds(false);  // warm-up (page cache, allocator)
  for (int i = 0; i < kTrials; ++i) {
    best_off = std::min(best_off, RunOnceSeconds(false));
    best_on = std::min(best_on, RunOnceSeconds(true));
  }
  const double overhead_pct = 100.0 * (best_on - best_off) / best_off;
  std::printf("no telemetry:        %.3f s\n", best_off);
  std::printf("attached, disabled:  %.3f s\n", best_on);
  std::printf("overhead: %.2f %% (threshold %.2f %%)\n", overhead_pct,
              threshold_pct);
  if (overhead_pct > threshold_pct) {
    std::printf("FAIL: disabled-path overhead above threshold\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
