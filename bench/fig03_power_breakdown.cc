// Reproduces Figure 3: Haswell-EP power breakdown into static and dynamic
// consumption, RAPL and PSU measurements.
#include "bench_common.h"

using namespace ecldb;

int main() {
  bench::PrintHeader("fig03_power_breakdown", "paper Fig. 3",
                     "Static (idle) vs dynamic (FIRESTARTER full load) power; "
                     "RAPL domains and modeled PSU wall power.");
  bench::MachineRig rig;
  hwsim::Machine& m = rig.machine;
  const hwsim::Topology& topo = m.topology();

  // Static: everything idle, uncore clocks halted.
  rig.simulator.RunFor(Seconds(1));
  const double s_pkg0 = m.InstantPkgPowerW(0);
  const double s_pkg1 = m.InstantPkgPowerW(1);
  const double s_dram = m.InstantDramPowerW(0) + m.InstantDramPowerW(1);
  const double s_rapl = m.InstantRaplPowerW();
  const double s_psu = m.InstantPsuPowerW();

  // Dynamic: FIRESTARTER-like AVX burn on every hardware thread, all cores
  // at the maximum nominal frequency (the paper excludes the short-lived
  // turbo peak).
  m.ApplyMachineConfig(hwsim::MachineConfig::AllOn(topo, 2.6, 3.0));
  for (int t = 0; t < topo.total_threads(); ++t) {
    m.SetThreadLoad(t, &workload::Firestarter(), 1.0);
  }
  rig.simulator.RunFor(Seconds(1));
  const double f_pkg0 = m.InstantPkgPowerW(0);
  const double f_pkg1 = m.InstantPkgPowerW(1);
  const double f_dram = m.InstantDramPowerW(0) + m.InstantDramPowerW(1);
  const double f_rapl = m.InstantRaplPowerW();
  const double f_psu = m.InstantPsuPowerW();

  TablePrinter table({"component", "static W", "full load W", "dynamic W"});
  table.AddRow({"CPU 1 (pkg)", Fmt(s_pkg0, 1), Fmt(f_pkg0, 1), Fmt(f_pkg0 - s_pkg0, 1)});
  table.AddRow({"CPU 2 (pkg)", Fmt(s_pkg1, 1), Fmt(f_pkg1, 1), Fmt(f_pkg1 - s_pkg1, 1)});
  table.AddRow({"DRAM (both)", Fmt(s_dram, 1), Fmt(f_dram, 1), Fmt(f_dram - s_dram, 1)});
  table.AddRow({"RAPL total", Fmt(s_rapl, 1), Fmt(f_rapl, 1), Fmt(f_rapl - s_rapl, 1)});
  table.AddRow({"overhead (PSU-RAPL)", Fmt(s_psu - s_rapl, 1),
                Fmt(f_psu - f_rapl, 1), Fmt((f_psu - f_rapl) - (s_psu - s_rapl), 1)});
  table.AddRow({"PSU (wall)", Fmt(s_psu, 1), Fmt(f_psu, 1), Fmt(f_psu - s_psu, 1)});
  table.Print();

  std::printf(
      "\nstatic share of peak wall power: %.1f %%  (paper: ~18 %%, vs >50 %% "
      "reported in 2010)\n",
      100.0 * s_psu / f_psu);
  std::printf("dynamic overhead share (PSU conversion/fans/board): %.1f %% "
              "(paper: ~15 %%)\n",
              100.0 * ((f_psu - f_rapl) - (s_psu - s_rapl)) / (f_rapl - s_rapl));
  return 0;
}
