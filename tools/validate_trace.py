#!/usr/bin/env python3
"""Validates an ecldb Chrome trace export against docs/trace_schema.json.

Stdlib only (no jsonschema dependency): implements exactly the subset of
JSON Schema the checked-in schema uses — required, type, enum, const,
minimum, and the per-phase allOf/if/then branches — plus a few semantic
checks the schema cannot express (monotone non-negative virtual time,
every event's tid refers to a lane announced by an "M" record).

Usage: tools/validate_trace.py <trace.json> [schema.json]
Exit status 0 when valid, 1 with a message otherwise.
"""

import json
import sys


def fail(msg):
    print("INVALID: %s" % msg)
    sys.exit(1)


TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


def check(value, schema, path):
    """Validates `value` against the schema subset; returns error or None."""
    if "const" in schema and value != schema["const"]:
        return "%s: expected %r, got %r" % (path, schema["const"], value)
    if "enum" in schema and value not in schema["enum"]:
        return "%s: %r not in %r" % (path, value, schema["enum"])
    if "type" in schema:
        if not TYPE_CHECKS[schema["type"]](value):
            return "%s: expected %s" % (path, schema["type"])
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            return "%s: %r below minimum %r" % (path, value, schema["minimum"])
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                return "%s: missing required field %r" % (path, req)
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                err = check(value[key], sub, "%s.%s" % (path, key))
                if err:
                    return err
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            err = check(item, schema["items"], "%s[%d]" % (path, i))
            if err:
                return err
    for branch in schema.get("allOf", []):
        cond = branch.get("if")
        then = branch.get("then")
        if cond is None or then is None:
            continue
        if check(value, cond, path) is None:  # the "if" matches
            err = check(value, then, path)
            if err:
                return err
    return None


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    trace_path = sys.argv[1]
    schema_path = sys.argv[2] if len(sys.argv) > 2 else "docs/trace_schema.json"

    with open(schema_path) as f:
        schema = json.load(f)
    try:
        with open(trace_path) as f:
            trace = json.load(f)
    except ValueError as e:
        fail("not valid JSON: %s" % e)

    err = check(trace, schema, "$")
    if err:
        fail(err)

    # Semantic checks beyond the schema.
    events = trace["traceEvents"]
    lanes = set()
    for e in events:
        if e["ph"] == "M":
            lanes.add(e.get("tid"))
    counts = {"M": 0, "X": 0, "i": 0, "C": 0}
    for i, e in enumerate(events):
        counts[e["ph"]] += 1
        if e["ph"] in ("X", "i") and e.get("tid") not in lanes:
            fail("event %d: tid %r has no thread_name metadata" % (i, e.get("tid")))
        if e["ph"] == "X" and e.get("dur", 0) < 0:
            fail("event %d: negative duration" % i)

    print(
        "OK: %d events (%d lanes, %d spans, %d instants, %d counter samples)"
        % (len(events), counts["M"], counts["X"], counts["i"], counts["C"])
    )


if __name__ == "__main__":
    main()
