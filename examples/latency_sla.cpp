// Latency-SLA scenario: the ECL treats a user-defined query latency limit
// as a soft constraint. This example sweeps the limit and shows the
// energy/latency trade-off under the bursty twitter-like load profile —
// tighter limits force the system-level ECL to keep more capacity online.
#include <cstdio>
#include <memory>

#include "experiment/experiment.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;

int main() {
  experiment::WorkloadFactory factory =
      [](engine::Engine* engine) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = true;  // latency-bound point lookups
    return std::make_unique<workload::KvWorkload>(engine, params);
  };
  workload::TwitterProfile load(/*seed=*/7, Seconds(60));

  std::printf("%-12s %-12s %-10s %-10s %-12s\n", "limit ms", "avg power W",
              "p99 ms", "viol %", "saving %");

  experiment::RunOptions baseline;
  baseline.mode = experiment::ControlMode::kBaseline;
  const experiment::RunResult base =
      experiment::RunLoadExperiment(factory, load, baseline);
  std::printf("%-12s %-12.1f %-10.1f %-10.2f %-12s\n", "baseline",
              base.avg_power_w, base.p99_ms, 0.0, "-");

  for (double limit_ms : {400.0, 100.0, 30.0}) {
    experiment::RunOptions options;
    options.mode = experiment::ControlMode::kEcl;
    options.ecl.system.latency_limit_ms = limit_ms;
    const experiment::RunResult r =
        experiment::RunLoadExperiment(factory, load, options);
    std::printf("%-12.0f %-12.1f %-10.1f %-10.2f %-12.1f\n", limit_ms,
                r.avg_power_w, r.p99_ms, 100.0 * r.violation_frac,
                experiment::SavingsPercent(base, r));
  }
  std::printf(
      "\nThe limit is a SOFT constraint: a reactive control loop cannot "
      "guarantee it, but pressure from the system-level ECL curbs "
      "race-to-idle and raises discovery aggressiveness as the limit "
      "approaches.\n");
  return 0;
}
