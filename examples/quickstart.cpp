// Quickstart: build the simulated Haswell-EP server, the data-oriented
// in-memory engine, and the Energy-Control Loop; drive a key-value
// workload at 40 % load and compare energy against the race-to-idle
// baseline.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "experiment/experiment.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;

int main() {
  // A workload factory builds the benchmark against a fresh engine; here:
  // the paper's custom key-value store, non-indexed (bandwidth-bound
  // partition scans).
  experiment::WorkloadFactory factory =
      [](engine::Engine* engine) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    return std::make_unique<workload::KvWorkload>(engine, params);
  };

  // 40 % of the baseline capacity for 30 seconds (virtual time; this runs
  // in a few wall-clock seconds).
  workload::ConstantProfile load(0.4, Seconds(30));

  experiment::RunOptions baseline;
  baseline.mode = experiment::ControlMode::kBaseline;
  const experiment::RunResult base =
      experiment::RunLoadExperiment(factory, load, baseline);

  experiment::RunOptions with_ecl;
  with_ecl.mode = experiment::ControlMode::kEcl;
  with_ecl.ecl.system.latency_limit_ms = 100.0;  // the soft constraint
  const experiment::RunResult ecl =
      experiment::RunLoadExperiment(factory, load, with_ecl);

  std::printf("baseline: %6.1f W avg, p99 latency %5.1f ms\n",
              base.avg_power_w, base.p99_ms);
  std::printf("ECL:      %6.1f W avg, p99 latency %5.1f ms\n",
              ecl.avg_power_w, ecl.p99_ms);
  std::printf("energy saving: %.1f %%\n", experiment::SavingsPercent(base, ecl));
  std::printf("most energy-efficient configuration found: %s\n",
              ecl.best_config.c_str());
  return 0;
}
