// Custom-hardware scenario: the ECL's energy profiles are hardware
// independent (paper Section 7: no hand-crafted models, measured at
// runtime). The same code runs unchanged on the paper's Haswell-EP and on
// a newer Skylake-SP-class machine — and even on a user-defined topology.
#include <cstdio>
#include <memory>

#include "experiment/experiment.h"
#include "workload/kv.h"
#include "workload/load_profile.h"

using namespace ecldb;

namespace {

void Compare(const char* name, const hwsim::MachineParams& machine) {
  experiment::WorkloadFactory factory =
      [](engine::Engine* engine) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    return std::make_unique<workload::KvWorkload>(engine, params);
  };
  workload::ConstantProfile load(0.35, Seconds(25));

  experiment::RunOptions base;
  base.machine = machine;
  base.mode = experiment::ControlMode::kBaseline;
  experiment::RunOptions ecl = base;
  ecl.mode = experiment::ControlMode::kEcl;

  const auto rb = experiment::RunLoadExperiment(factory, load, base);
  const auto re = experiment::RunLoadExperiment(factory, load, ecl);
  std::printf("%-28s %2d sockets x %2d cores | baseline %6.1f W | ECL %6.1f W "
              "| saving %4.1f %% | best: %s\n",
              name, machine.topology.num_sockets,
              machine.topology.cores_per_socket, rb.avg_power_w,
              re.avg_power_w, experiment::SavingsPercent(rb, re),
              re.best_config.c_str());
}

}  // namespace

int main() {
  std::printf("non-indexed key-value store at 35 %% load, 100 ms limit\n\n");
  Compare("Haswell-EP (paper's SUT)", hwsim::MachineParams::HaswellEp());
  Compare("Skylake-SP class", hwsim::MachineParams::SkylakeSp());

  // A hypothetical narrow edge server: one socket, six cores.
  hwsim::MachineParams edge = hwsim::MachineParams::HaswellEp();
  edge.topology = hwsim::Topology{1, 6, 2};
  edge.power.pkg_base_halted_w = {8.0};
  edge.bandwidth.peak_gbps = 25.0;
  Compare("custom edge box (1x6 cores)", edge);

  std::printf(
      "\nNo controller code changes between machines: the configuration "
      "generator enumerates whatever the frequency tables/topology offer, "
      "and the profiles are measured through RAPL-style counters at "
      "runtime.\n");
  return 0;
}
