// Functional-mode tour of the in-memory DBMS itself: real partitioned
// storage, hash indexes, TATP transactions and SSB star-join queries
// executing against real data (no fluid cost accounting involved).
#include <cstdio>

#include "common/rng.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/kv.h"
#include "workload/micro.h"
#include "workload/ssb.h"
#include "workload/tatp.h"

using namespace ecldb;

int main() {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  Rng rng(2026);

  // --- Key-value store ----------------------------------------------------
  workload::KvParams kv_params;
  kv_params.indexed = true;
  kv_params.functional_keys = 100'000;
  workload::KvWorkload kv(&engine, kv_params);
  kv.Load();
  kv.Put(42, 4242);
  std::printf("kv: loaded %lld keys, get(42) = %lld, >= half: %lld rows\n",
              static_cast<long long>(kv.loaded_keys()),
              static_cast<long long>(*kv.Get(42)),
              static_cast<long long>(kv.ScanCountAtLeast(kv_params.functional_keys)));

  // --- TATP (OLTP) ---------------------------------------------------------
  sim::Simulator sim2;
  hwsim::Machine machine2(&sim2, hwsim::MachineParams::HaswellEp());
  engine::Engine engine2(&sim2, &machine2, engine::EngineParams{});
  workload::TatpParams tatp_params;
  tatp_params.subscribers = 20'000;
  workload::TatpWorkload tatp(&engine2, tatp_params);
  tatp.Load();
  int ok = 0;
  constexpr int kTx = 50'000;
  for (int i = 0; i < kTx; ++i) {
    ok += tatp.ExecuteTx(tatp.PickTx(rng), rng) ? 1 : 0;
  }
  std::printf("tatp: %d transactions, %.1f %% committed (spec mix over 4 "
              "tables); GET_ACCESS_DATA hit rate %.1f %% (spec: ~62.5 %%)\n",
              kTx, 100.0 * ok / kTx,
              100.0 *
                  static_cast<double>(
                      tatp.succeeded(workload::TatpWorkload::TxType::kGetAccessData)) /
                  static_cast<double>(
                      tatp.executed(workload::TatpWorkload::TxType::kGetAccessData)));

  // --- SSB (OLAP) ----------------------------------------------------------
  sim::Simulator sim3;
  hwsim::Machine machine3(&sim3, hwsim::MachineParams::HaswellEp());
  engine::Engine engine3(&sim3, &machine3, engine::EngineParams{});
  workload::SsbParams ssb_params;
  ssb_params.scale_factor = 0.02;
  workload::SsbWorkload ssb(&engine3, ssb_params);
  ssb.Load();
  std::printf("ssb: %lld lineorder rows loaded across %d partitions\n",
              static_cast<long long>(ssb.lineorder_rows()),
              engine3.db().num_partitions());
  for (int i = 0; i < workload::SsbWorkload::kNumQueries; ++i) {
    const auto [flight, number] = workload::SsbWorkload::QueryAt(i);
    const auto r = ssb.RunQuery(flight, number);
    std::printf("  Q%d.%d: %7lld matches, %3d groups, agg %.3e\n", flight,
                number, static_cast<long long>(r.matches), r.groups,
                r.aggregate);
  }

  // Distributed execution of Q2.1: fan-out through the message layer,
  // partition-local pipelines, merged partial aggregates — with a real
  // virtual-time latency.
  machine3.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine3.topology(), 2.6, 3.0));
  ssb.InstallExecutor();
  const QueryId q = ssb.SubmitQuery(2, 1);
  sim3.RunFor(Seconds(2));
  if (const auto r = ssb.TakeResult(q)) {
    std::printf(
        "  Q2.1 distributed: %lld matches in %d groups, latency %.1f ms\n",
        static_cast<long long>(r->matches), r->groups,
        engine3.latency().all().Mean());
  }

  // --- Micro kernels (the real loops behind the simulated profiles) -------
  std::printf("kernels: compute=%lld atomic=%lld hash=%zu\n",
              static_cast<long long>(workload::kernels::ComputeKernel(1'000'000)),
              static_cast<long long>(
                  workload::kernels::AtomicContentionKernel(4, 200'000)),
              workload::kernels::SharedHashInsertKernel(4, 50'000));
  return 0;
}
