// Workload-shift scenario: the DBMS workload changes character at runtime
// (indexed OLTP-style point lookups -> non-indexed analytical scans). The
// ECL's drift detection notices that the applied configuration no longer
// behaves as its energy profile predicted, flags the profile, and the
// multiplexed adaptation relearns it while serving queries.
#include <cstdio>

#include "ecl/ecl.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

using namespace ecldb;

int main() {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});

  workload::KvParams indexed_params;
  indexed_params.indexed = true;
  workload::KvWorkload indexed(&engine, indexed_params);
  workload::KvParams scan_params;
  scan_params.indexed = false;
  workload::KvWorkload scan(&engine, scan_params);

  ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
  loop.Start();

  // Warm up the energy profiles on the indexed workload.
  engine.scheduler().SetSyntheticLoad(&indexed.profile());
  sim.RunFor(Seconds(30));
  engine.scheduler().SetSyntheticLoad(nullptr);

  // Phase 1: indexed at 50 % load. Phase 2 (t=20 s): scans at 50 % load.
  workload::ConstantProfile phase1(0.5, Seconds(20));
  workload::DriverParams dp1;
  dp1.capacity_qps = workload::BaselineCapacityQps(machine.params(), indexed);
  workload::LoadDriver driver1(&sim, &engine, &indexed, &phase1, dp1);
  workload::ConstantProfile phase2(0.5, Seconds(40));
  workload::DriverParams dp2;
  dp2.capacity_qps = workload::BaselineCapacityQps(machine.params(), scan);
  workload::LoadDriver driver2(&sim, &engine, &scan, &phase2, dp2);

  driver1.Start();
  std::printf("%-6s %-10s %-26s %-8s %-10s\n", "t s", "power W",
              "applied config", "util", "mux evals");
  ecl::SocketEcl& se = loop.socket(0);
  int64_t prev_evals = 0;
  for (int t = 1; t <= 60; ++t) {
    if (t == 20) driver2.Start();
    sim.RunFor(Seconds(1));
    if (t % 4 == 0 || (t >= 19 && t <= 26)) {
      const profile::Configuration& cfg =
          se.profile().config(se.current_config_index());
      char desc[64];
      std::snprintf(desc, sizeof(desc), "%2d thr @ %.1f GHz, uncore %.1f",
                    cfg.hw.ActiveThreadCount(),
                    cfg.hw.MeanActiveCoreFreq(machine.topology()),
                    cfg.hw.uncore_freq_ghz);
      const int64_t evals = se.maintenance().multiplexed_evals();
      std::printf("%-6d %-10.1f %-26s %-8.2f %-10lld%s\n", t,
                  machine.InstantRaplPowerW(), desc, se.last_utilization(),
                  static_cast<long long>(evals - prev_evals),
                  t == 20 ? "   <-- workload switch" : "");
      prev_evals = evals;
    }
  }
  std::printf(
      "\nAfter the switch, drift detection invalidates the profile and the "
      "multiplexed adaptation reevaluates configurations in the background "
      "until the new optimum is found.\n");
  return 0;
}
